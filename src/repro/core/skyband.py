"""K-skyband and top-k dominating queries — skyline generalisations.

Two standard relaxations of the skyline operator from the literature the
paper builds on (Papadias et al. define both alongside BBS):

* the **k-skyband** is the set of points dominated by *fewer than k* other
  points — ``k = 1`` is exactly the skyline; larger ``k`` gives services
  that are near-optimal, useful when the strict skyline is too small or
  when robustness to measurement noise matters;
* **top-k dominating** returns the ``k`` points that dominate the most
  other points — a ranking flavour of dominance (not restricted to skyline
  members, though the top dominator always is one).

The pairwise counting runs through the :mod:`repro.core.kernels` seam
(:meth:`~repro.core.kernels.DominanceKernel.dominator_counts` /
:meth:`~repro.core.kernels.DominanceKernel.dominated_counts`) — counts are
exact integers, so every backend returns the same answers.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import DominanceCounter
from repro.core.kernels import DominanceKernel, get_kernel

__all__ = ["dominator_counts", "k_skyband", "top_k_dominating"]


def dominator_counts(
    points: np.ndarray,
    *,
    block: int = 2048,
    counter: DominanceCounter | None = None,
    kernel: str | DominanceKernel | None = None,
) -> np.ndarray:
    """Number of points dominating each point (0 for skyline members)."""
    return get_kernel(kernel).dominator_counts(
        points, block=block, counter=counter, stage="skyband"
    )


def k_skyband(
    points: np.ndarray,
    k: int,
    *,
    block: int = 2048,
    counter: DominanceCounter | None = None,
    kernel: str | DominanceKernel | None = None,
) -> np.ndarray:
    """Ascending indices of points dominated by fewer than ``k`` others.

    ``k_skyband(points, 1)`` equals the skyline; skybands are nested in
    ``k`` (each is a superset of the previous).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    counts = dominator_counts(points, block=block, counter=counter, kernel=kernel)
    return np.flatnonzero(counts < k).astype(np.intp)


def top_k_dominating(
    points: np.ndarray,
    k: int,
    *,
    block: int = 2048,
    counter: DominanceCounter | None = None,
    kernel: str | DominanceKernel | None = None,
) -> np.ndarray:
    """Indices of the ``k`` points dominating the most others (best first).

    Ties break toward the lower input index (stable, deterministic).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    dominated = get_kernel(kernel).dominated_counts(
        points, block=block, counter=counter, stage="top-k-dominating"
    )
    n = dominated.shape[0]
    # Stable sort on (-count, index): numpy's stable argsort on -count keeps
    # input order among ties.
    order = np.argsort(-dominated, kind="stable")
    return order[: min(k, n)].astype(np.intp)
