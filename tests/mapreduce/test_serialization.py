"""Tests for repro.mapreduce.serialization."""

import io

import numpy as np
import pytest

from repro.mapreduce.errors import SerializationError
from repro.mapreduce.serialization import (
    NumpyRowCodec,
    PickleCodec,
    dump_records,
    estimate_nbytes,
    load_records,
    read_frames,
    write_frames,
)


class TestPickleCodec:
    @pytest.mark.parametrize(
        "obj",
        [None, 42, 3.14, "text", b"bytes", [1, 2], {"k": (1, 2)}, (1, "a")],
    )
    def test_round_trip(self, obj):
        codec = PickleCodec()
        assert codec.decode(codec.encode(obj)) == obj

    def test_numpy_round_trip(self):
        codec = PickleCodec()
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        out = codec.decode(codec.encode(arr))
        assert np.array_equal(out, arr)

    def test_decode_garbage_raises(self):
        with pytest.raises(SerializationError):
            PickleCodec().decode(b"\x00not-a-pickle")


class TestNumpyRowCodec:
    def test_round_trip(self):
        codec = NumpyRowCodec(dim=5)
        row = np.array([1.0, 2.5, -3.0, 0.0, 1e12])
        out = codec.decode(codec.encode(row))
        assert np.array_equal(out, row)
        assert out.dtype == np.float64

    def test_decoded_copy_is_writable(self):
        codec = NumpyRowCodec(dim=2)
        out = codec.decode(codec.encode(np.array([1.0, 2.0])))
        out[0] = 99.0  # would raise if backed by a read-only buffer

    def test_wrong_shape_rejected(self):
        codec = NumpyRowCodec(dim=3)
        with pytest.raises(SerializationError):
            codec.encode(np.zeros(4))

    def test_wrong_payload_size_rejected(self):
        codec = NumpyRowCodec(dim=3)
        with pytest.raises(SerializationError):
            codec.decode(b"\x00" * 23)

    def test_bad_dim_rejected(self):
        with pytest.raises(ValueError):
            NumpyRowCodec(dim=0)


class TestFrames:
    def test_round_trip(self):
        buf = io.BytesIO()
        payloads = [b"a", b"", b"longer payload"]
        assert write_frames(buf, payloads) == 3
        buf.seek(0)
        assert list(read_frames(buf)) == payloads

    def test_empty_stream(self):
        assert list(read_frames(io.BytesIO())) == []

    def test_truncated_header_raises(self):
        with pytest.raises(SerializationError):
            list(read_frames(io.BytesIO(b"\x01\x00")))

    def test_truncated_payload_raises(self):
        buf = io.BytesIO()
        write_frames(buf, [b"abcdef"])
        data = buf.getvalue()[:-2]
        with pytest.raises(SerializationError):
            list(read_frames(io.BytesIO(data)))

    def test_dump_load_records(self):
        records = [("k", 1), ("k2", [1, 2, 3]), (None, None)]
        assert load_records(dump_records(records)) == records


class TestEstimateNbytes:
    def test_array_exact(self):
        arr = np.zeros((10, 3))
        assert estimate_nbytes(arr) == arr.nbytes

    def test_bytes_exact(self):
        assert estimate_nbytes(b"12345") == 5

    def test_str_utf8(self):
        assert estimate_nbytes("abc") == 3
        assert estimate_nbytes("é") == 2

    def test_scalars_small(self):
        assert estimate_nbytes(None) == 1
        assert estimate_nbytes(True) == 1
        assert estimate_nbytes(7) == 8
        assert estimate_nbytes(7.5) == 8

    def test_containers_recursive(self):
        flat = estimate_nbytes(b"xxxx")
        nested = estimate_nbytes([b"xxxx", b"xxxx"])
        assert nested >= 2 * flat

    def test_dict(self):
        assert estimate_nbytes({"a": 1}) >= 9

    def test_numpy_scalar(self):
        assert estimate_nbytes(np.float64(1.0)) == 8
        assert estimate_nbytes(np.int64(1)) == 8
