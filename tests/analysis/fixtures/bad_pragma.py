"""Fixture: pragma-hygiene violations (malformed / unknown rule ids)."""


def missing_id():
    return 1  # repro: allow


def unknown_id():
    return 2  # repro: allow[definitely-not-a-rule]


def malformed_id():
    return 3  # repro: allow[Not_A_Valid_Id!]
