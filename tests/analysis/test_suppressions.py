"""Suppression pragmas: they silence findings, and stay auditable."""

from repro.analysis import run_lint
from repro.analysis.suppressions import parse_suppressions

from tests.analysis.conftest import fixture_path


class TestPragmaSuppression:
    def test_inline_and_standalone_pragmas_suppress(self):
        result = run_lint(
            [fixture_path("suppressed.py")], rule_ids=["exception-hygiene"]
        )
        assert result.findings == []
        assert result.suppressed == 2
        assert result.exit_code == 0

    def test_unsuppressed_twin_still_fires(self):
        result = run_lint(
            [fixture_path("except_swallow.py")],
            rule_ids=["exception-hygiene"],
        )
        assert result.findings


class TestPragmaHygiene:
    def test_malformed_and_unknown_pragmas_are_findings(self):
        result = run_lint([fixture_path("bad_pragma.py")])
        by_rule = {}
        for finding in result.findings:
            by_rule.setdefault(finding.rule_id, []).append(finding)
        assert set(by_rule) == {"lint-pragma"}
        messages = "\n".join(f.message for f in by_rule["lint-pragma"])
        assert "names no rule id" in messages
        assert "definitely-not-a-rule" in messages
        assert "malformed rule id" in messages
        assert result.exit_code == 1

    def test_pragma_lines_match_source(self):
        source = open(fixture_path("bad_pragma.py"), encoding="utf-8").read()
        pragma_lines = {
            lineno
            for lineno, line in enumerate(source.splitlines(), start=1)
            if "repro: allow" in line
        }
        result = run_lint([fixture_path("bad_pragma.py")])
        assert {f.line for f in result.findings} == pragma_lines


class TestParseSuppressions:
    def test_inline_pragma_covers_its_own_line_only(self):
        sup = parse_suppressions("x = 1  # repro: allow[udf-purity]\ny = 2\n")
        assert sup.suppresses("udf-purity", 1)
        assert not sup.suppresses("udf-purity", 2)

    def test_standalone_pragma_covers_next_line(self):
        sup = parse_suppressions("# repro: allow[udf-purity]\nx = 1\n")
        assert sup.suppresses("udf-purity", 1)
        assert sup.suppresses("udf-purity", 2)

    def test_multiple_ids_in_one_pragma(self):
        sup = parse_suppressions(
            "x = 1  # repro: allow[udf-purity, pickle-safety]\n"
        )
        assert sup.suppresses("udf-purity", 1)
        assert sup.suppresses("pickle-safety", 1)

    def test_pragma_inside_string_literal_is_ignored(self):
        sup = parse_suppressions('x = "# repro: allow[udf-purity]"\n')
        assert not sup.suppresses("udf-purity", 1)
        assert sup.malformed == []

    def test_other_rules_not_suppressed(self):
        sup = parse_suppressions("x = 1  # repro: allow[udf-purity]\n")
        assert not sup.suppresses("lock-discipline", 1)
