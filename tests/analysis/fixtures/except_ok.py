"""Clean fixture: broad handlers that wrap or re-raise, and narrow ones."""


class TaskError(Exception):
    def __init__(self, task_id, cause):
        super().__init__(task_id, cause)


def wraps(task_id, fn):
    try:
        return fn()
    except Exception as exc:
        raise TaskError(task_id, exc) from exc


def cleans_up(fn, resource):
    try:
        return fn()
    except Exception:
        resource.close()
        raise


def narrow(path):
    try:
        with open(path) as fh:
            return fh.read()
    except OSError:
        return None
