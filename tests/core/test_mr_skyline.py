"""Integration tests: the MR-Dim / MR-Grid / MR-Angle pipelines end to end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.mr_skyline import (
    COUNTER_GROUP,
    default_partition_count,
    run_mr_skyline,
)
from repro.core.partitioning import AngularPartitioner
from repro.core.skyline import skyline_numpy
from repro.mapreduce.runner import MultiprocessRunner

METHODS = ("dim", "grid", "angle", "random")

nonneg_clouds = arrays(
    np.float64,
    st.tuples(st.integers(2, 80), st.integers(2, 4)),
    elements=st.floats(0, 50, allow_nan=False),
)


@pytest.fixture(scope="module")
def cloud():
    return np.random.default_rng(42).random((3000, 4))


class TestCorrectness:
    @pytest.mark.parametrize("method", METHODS)
    def test_matches_reference(self, cloud, method):
        result = run_mr_skyline(cloud, method=method, num_workers=4)
        assert np.array_equal(result.global_indices, skyline_numpy(cloud))

    @pytest.mark.parametrize("method", METHODS)
    def test_local_skylines_cover_global(self, cloud, method):
        result = run_mr_skyline(cloud, method=method, num_workers=4)
        union = set()
        for sky in result.local_skylines.values():
            union.update(sky.tolist())
        assert set(result.global_indices.tolist()) <= union

    def test_partition_rule(self):
        assert default_partition_count(4) == 8
        with pytest.raises(ValueError):
            default_partition_count(0)

    def test_num_partitions_override(self, cloud):
        result = run_mr_skyline(cloud, method="angle", num_partitions=3)
        assert result.num_partitions == 3
        assert np.array_equal(result.global_indices, skyline_numpy(cloud))

    def test_single_partition_degenerate(self, cloud):
        result = run_mr_skyline(cloud, method="angle", num_partitions=1)
        assert np.array_equal(result.global_indices, skyline_numpy(cloud))

    def test_tiny_input(self):
        pts = np.array([[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
        result = run_mr_skyline(pts, method="angle", num_workers=2)
        assert result.global_indices.tolist() == [0, 1]

    def test_single_point(self):
        result = run_mr_skyline(np.array([[1.0, 1.0]]), method="dim")
        assert result.global_indices.tolist() == [0]

    def test_block_size_invariant(self, cloud):
        a = run_mr_skyline(cloud, method="angle", block_rows=100)
        b = run_mr_skyline(cloud, method="angle", block_rows=4096)
        assert np.array_equal(a.global_indices, b.global_indices)

    def test_combiner_invariant(self, cloud):
        plain = run_mr_skyline(cloud, method="angle")
        combined = run_mr_skyline(cloud, method="angle", use_combiner=True)
        assert np.array_equal(plain.global_indices, combined.global_indices)

    def test_window_size_invariant(self, cloud):
        bounded = run_mr_skyline(cloud, method="angle", window_size=16)
        assert np.array_equal(bounded.global_indices, skyline_numpy(cloud))

    def test_grid_pruning_invariant(self, cloud):
        pruned = run_mr_skyline(cloud, method="grid", prune_grid_cells=True)
        unpruned = run_mr_skyline(cloud, method="grid", prune_grid_cells=False)
        assert np.array_equal(pruned.global_indices, unpruned.global_indices)

    def test_grid_pruning_drops_points_in_2d(self):
        pts = np.random.default_rng(1).random((2000, 2))
        result = run_mr_skyline(
            pts, method="grid", num_partitions=4, prune_grid_cells=True
        )
        assert result.points_pruned > 0
        assert np.array_equal(result.global_indices, skyline_numpy(pts))

    def test_explicit_partitioner(self, cloud):
        p = AngularPartitioner(6, bins="equal-width")
        result = run_mr_skyline(cloud, partitioner=p)
        assert result.method == "angle"
        assert result.num_partitions == 6
        assert np.array_equal(result.global_indices, skyline_numpy(cloud))

    def test_tree_merge_matches_single(self, cloud):
        single = run_mr_skyline(cloud, method="angle", num_partitions=32)
        tree = run_mr_skyline(
            cloud,
            method="angle",
            num_partitions=32,
            merge_strategy="tree",
            merge_fan_in=4,
        )
        assert np.array_equal(single.global_indices, tree.global_indices)
        # 32 partitions at fan-in 4: 32 -> 8 -> final merge = 2 extra jobs...
        # actually 32 -> 8 (round 0), 8 <= fan? no (8 > 4) -> 8 -> 2, then
        # final merge: partition job + 2 tree rounds + merge = 4 jobs.
        assert len(tree.chain.results) == 4
        assert "treemerge" in tree.chain.results[1].job_name

    def test_tree_merge_small_partition_count_skips_rounds(self, cloud):
        tree = run_mr_skyline(
            cloud, method="angle", num_partitions=4, merge_strategy="tree",
            merge_fan_in=8,
        )
        assert len(tree.chain.results) == 2  # nothing to pre-merge

    def test_tree_merge_validation(self, cloud):
        with pytest.raises(ValueError, match="merge_strategy"):
            run_mr_skyline(cloud, merge_strategy="hyper")
        with pytest.raises(ValueError, match="merge_fan_in"):
            run_mr_skyline(cloud, merge_strategy="tree", merge_fan_in=1)

    def test_multiprocess_runner_agrees(self, cloud):
        serial = run_mr_skyline(cloud, method="angle", num_workers=2)
        mp = run_mr_skyline(
            cloud,
            method="angle",
            num_workers=2,
            runner=MultiprocessRunner(num_workers=2),
        )
        assert np.array_equal(serial.global_indices, mp.global_indices)

    @pytest.mark.parametrize("method", ("dim", "grid", "angle"))
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_property_any_cloud(self, method, data):
        pts = data.draw(nonneg_clouds)
        result = run_mr_skyline(pts, method=method, num_workers=2)
        assert np.array_equal(result.global_indices, skyline_numpy(pts))


class TestResultMetadata:
    def test_counters_present(self, cloud):
        result = run_mr_skyline(cloud, method="angle")
        assert result.counters.value(COUNTER_GROUP, "points_mapped") == 3000
        assert result.dominance_tests > 0

    def test_summary_fields(self, cloud):
        s = run_mr_skyline(cloud, method="angle").summary()
        assert s["method"] == "angle"
        assert s["global_skyline"] == skyline_numpy(cloud).size
        assert s["processing_time_s"] > 0

    def test_chain_has_two_jobs(self, cloud):
        result = run_mr_skyline(cloud, method="angle")
        assert len(result.chain.results) == 2
        assert result.chain.results[0].job_name == "mr-angle-partition"
        assert result.chain.results[1].job_name == "mr-angle-merge"

    def test_partition_ids_match_local_skylines(self, cloud):
        result = run_mr_skyline(cloud, method="angle")
        for pid, sky in result.local_skylines.items():
            assert (result.partition_ids[sky] == pid).all()

    def test_simulate_hook(self, cloud):
        from repro.mapreduce.cluster import ClusterSpec

        result = run_mr_skyline(cloud, method="angle")
        sim = result.simulate(ClusterSpec(num_nodes=4))
        assert sim.total_s > 0
        assert len(sim.jobs) == 2

    def test_global_points_rows(self, cloud):
        result = run_mr_skyline(cloud, method="angle")
        rows = result.global_points(cloud)
        assert rows.shape == (result.global_indices.size, cloud.shape[1])

    def test_map_reduce_busy_positive(self, cloud):
        result = run_mr_skyline(cloud, method="angle")
        assert result.map_busy_s > 0
        assert result.reduce_busy_s > 0
