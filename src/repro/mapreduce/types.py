"""Core value types shared across the MapReduce engine.

The engine moves ``(key, value)`` pairs.  Keys must be hashable and totally
orderable within one job (the shuffle sorts by key); values are arbitrary
Python objects.  :class:`TaskStats` is the engine's timing record — one per
executed task — and is the raw material for the cluster timing simulation
(:mod:`repro.mapreduce.simulation`) that reproduces the paper's Figure 6.
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Hashable, NamedTuple


class KeyValue(NamedTuple):
    """A single key/value record flowing through the engine."""

    key: Hashable
    value: Any


class TaskKind(enum.Enum):
    """Which pipeline stage a task belongs to."""

    MAP = "map"
    REDUCE = "reduce"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class TaskStats:
    """Timing and volume accounting for one executed task.

    Attributes
    ----------
    task_id:
        Engine-assigned id, e.g. ``"map-7"``.
    kind:
        :class:`TaskKind.MAP` or :class:`TaskKind.REDUCE`.
    duration_s:
        Wall-clock seconds spent inside the task body (user code + framework
        record handling, excluding inter-process transfer).
    records_in / records_out:
        Record counts crossing the task boundary.
    bytes_out:
        Estimated serialized size of the task output; drives the shuffle
        cost model in the simulator.
    partition:
        For reduce tasks, the reduce-partition index; ``-1`` for map tasks.
    """

    task_id: str
    kind: TaskKind
    duration_s: float = 0.0
    records_in: int = 0
    records_out: int = 0
    bytes_out: int = 0
    partition: int = -1
    attempt: int = 1

    def merged_with(self, other: "TaskStats") -> "TaskStats":
        """Combine two attempts/stat fragments of the same logical task."""
        if other.task_id != self.task_id:
            raise ValueError(
                f"cannot merge stats of {self.task_id} with {other.task_id}"
            )
        return TaskStats(
            task_id=self.task_id,
            kind=self.kind,
            duration_s=self.duration_s + other.duration_s,
            records_in=self.records_in + other.records_in,
            records_out=self.records_out + other.records_out,
            bytes_out=self.bytes_out + other.bytes_out,
            partition=self.partition,
            attempt=max(self.attempt, other.attempt),
        )


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """The runner's fault-tolerance contract for one job run.

    Replaces the bare ``max_task_retries`` counter (kept as a constructor
    alias on :class:`~repro.mapreduce.runner.Runner`) with the full policy:
    how often to retry, how long to wait between attempts, when to abandon
    a hung task, when to launch a speculative backup, and what to do when a
    task is terminally lost.

    Backoff before retry ``attempt`` (attempt 2 is the first retry) is
    ``min(backoff_max_s, backoff_base_s × backoff_factor^(attempt-1))``,
    then scaled by a seeded jitter multiplier drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` — deterministic per ``(seed, task_id,
    attempt)``, so two runs with the same policy wait out identical
    schedules.

    Attributes
    ----------
    max_retries:
        Retries after the first attempt; ``0`` means fail on first error.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff shape.  ``backoff_base_s = 0`` (the default)
        retries immediately, preserving the engine's historical behaviour.
    jitter:
        Relative jitter amplitude in ``[0, 1]``; ``0`` disables it.
    seed:
        Seed for the jitter PRNG (see :func:`stable_backoff_rng`).
    task_timeout_s:
        Per-attempt wall-clock budget, or ``None`` for no deadline.  On
        pool executors the driver abandons the future at the deadline and
        schedules a retry; the serial executor cannot pre-empt, so inline
        tasks honour the deadline only cooperatively (see
        :mod:`repro.mapreduce.faults`).
    speculation:
        Launch backup attempts for stragglers (pool executors only —
        mirrors :class:`~repro.mapreduce.simulation.StragglerSpec`).
    speculation_factor:
        A running task is a straggler once its elapsed time exceeds
        ``speculation_factor × median(completed task durations)``.
    speculation_min_completed:
        Completed-task sample size required before speculation arms.
    speculation_poll_s:
        Driver wake-up interval for deadline/speculation checks while
        futures are in flight.
    on_lost:
        ``"fail"`` raises :class:`~repro.mapreduce.errors.JobFailedError`
        when a task exhausts its retries; ``"degrade"`` records the loss,
        substitutes an empty output, and returns a job result flagged
        ``partial=True`` with the lost task ids listed.
    """

    max_retries: int = 0
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.0
    seed: int = 0
    task_timeout_s: float | None = None
    speculation: bool = False
    speculation_factor: float = 1.5
    speculation_min_completed: int = 2
    speculation_poll_s: float = 0.01
    on_lost: str = "fail"

    def validate(self) -> None:
        """Reject non-sensical policies at configuration time."""
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            # Factor >= 1 keeps the pre-jitter schedule monotone
            # non-decreasing — the property the chaos suite asserts.
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_s < 0:
            raise ValueError(
                f"backoff_max_s must be >= 0, got {self.backoff_max_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be > 0 or None, got {self.task_timeout_s}"
            )
        if self.speculation_factor < 1.0:
            raise ValueError(
                f"speculation_factor must be >= 1, got {self.speculation_factor}"
            )
        if self.speculation_min_completed < 1:
            raise ValueError(
                "speculation_min_completed must be >= 1, got "
                f"{self.speculation_min_completed}"
            )
        if self.speculation_poll_s <= 0:
            raise ValueError(
                f"speculation_poll_s must be > 0, got {self.speculation_poll_s}"
            )
        if self.on_lost not in ("fail", "degrade"):
            raise ValueError(
                f'on_lost must be "fail" or "degrade", got {self.on_lost!r}'
            )

    def pre_jitter_backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (>= 2), before jitter.

        Monotone non-decreasing in ``attempt`` and capped at
        ``backoff_max_s``; ``0.0`` whenever ``backoff_base_s`` is zero.
        """
        if attempt < 2:
            return 0.0
        if self.backoff_base_s <= 0:
            return 0.0
        raw = self.backoff_base_s * self.backoff_factor ** (attempt - 2)
        return min(self.backoff_max_s, raw)

    def backoff_s(self, task_id: str, attempt: int) -> float:
        """Jittered backoff before retry ``attempt`` of ``task_id``.

        Deterministic: the jitter multiplier comes from a PRNG seeded by a
        stable digest of ``(seed, task_id, attempt)``.
        """
        base = self.pre_jitter_backoff_s(attempt)
        if base <= 0 or self.jitter <= 0:
            return base
        rng = stable_backoff_rng(self.seed, task_id, attempt)
        multiplier = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, base * multiplier)


def stable_backoff_rng(seed: int, task_id: str, attempt: int) -> random.Random:
    """PRNG for backoff jitter, keyed by a salted-``hash()``-free digest.

    BLAKE2 over the repr of the key tuple gives the same stream on every
    interpreter and platform — the property the determinism tests pin.
    """
    digest = hashlib.blake2b(
        repr((seed, task_id, attempt)).encode("utf-8"), digest_size=8
    ).digest()
    return random.Random(int.from_bytes(digest, "big"))


@dataclass(slots=True)
class PhaseStats:
    """Aggregated statistics for one phase (all map tasks or all reduce tasks).

    ``busy_s`` is the *sum* of task durations (total work); ``critical_s`` is
    the longest single task (a lower bound on the phase's parallel makespan
    with unlimited slots).
    """

    kind: TaskKind
    tasks: list[TaskStats] = field(default_factory=list)

    @property
    def busy_s(self) -> float:
        return sum(t.duration_s for t in self.tasks)

    @property
    def critical_s(self) -> float:
        return max((t.duration_s for t in self.tasks), default=0.0)

    @property
    def records_in(self) -> int:
        return sum(t.records_in for t in self.tasks)

    @property
    def records_out(self) -> int:
        return sum(t.records_out for t in self.tasks)

    @property
    def bytes_out(self) -> int:
        return sum(t.bytes_out for t in self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)
