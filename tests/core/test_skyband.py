"""Tests for k-skyband and top-k dominating queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.dominance import DominanceCounter, dominates
from repro.core.skyband import dominator_counts, k_skyband, top_k_dominating
from repro.core.skyline import skyline_numpy

clouds = arrays(
    np.float64,
    st.tuples(st.integers(1, 60), st.integers(1, 4)),
    elements=st.floats(0, 20, allow_nan=False),
)


class TestDominatorCounts:
    def test_manual_chain(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        assert dominator_counts(pts).tolist() == [0, 1, 2]

    def test_skyline_has_zero(self):
        pts = np.random.default_rng(0).random((200, 3))
        counts = dominator_counts(pts)
        sky = skyline_numpy(pts)
        assert (counts[sky] == 0).all()
        non_sky = np.setdiff1d(np.arange(200), sky)
        assert (counts[non_sky] > 0).all()

    @pytest.mark.parametrize("block", [1, 7, 4096])
    def test_block_invariant(self, block):
        pts = np.random.default_rng(1).random((150, 3))
        assert np.array_equal(
            dominator_counts(pts, block=block), dominator_counts(pts)
        )

    def test_counter(self):
        c = DominanceCounter()
        dominator_counts(np.ones((10, 2)), counter=c)
        assert c.tests == 100

    @given(clouds)
    @settings(max_examples=40)
    def test_property_matches_scalar(self, pts):
        counts = dominator_counts(pts)
        n = pts.shape[0]
        for j in range(min(n, 8)):
            expected = sum(
                1 for i in range(n) if i != j and dominates(pts[i], pts[j])
            )
            assert counts[j] == expected


class TestKSkyband:
    def test_k1_is_skyline(self):
        pts = np.random.default_rng(2).random((300, 3))
        assert np.array_equal(k_skyband(pts, 1), skyline_numpy(pts))

    def test_nested_in_k(self):
        pts = np.random.default_rng(3).random((300, 3))
        prev: set = set()
        for k in (1, 2, 4, 8):
            band = set(k_skyband(pts, k).tolist())
            assert prev <= band
            prev = band

    def test_k_large_returns_everything(self):
        pts = np.random.default_rng(4).random((50, 2))
        assert k_skyband(pts, 10_000).size == 50

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_skyband(np.ones((2, 2)), 0)

    def test_total_order_chain(self):
        pts = np.arange(10, dtype=float).reshape(-1, 1) @ np.ones((1, 2))
        assert k_skyband(pts, 3).tolist() == [0, 1, 2]

    @given(clouds, st.integers(1, 5))
    @settings(max_examples=40)
    def test_property_definition(self, pts, k):
        band = set(k_skyband(pts, k).tolist())
        counts = dominator_counts(pts)
        for j in range(pts.shape[0]):
            assert (j in band) == (counts[j] < k)


class TestTopKDominating:
    def test_best_dominator_first(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [5.0, 0.1]])
        top = top_k_dominating(pts, 2)
        assert top[0] == 0  # dominates 2 points (and [5,.1]? no) -> most

    def test_top1_is_skyline_member(self):
        pts = np.random.default_rng(5).random((300, 3))
        top = top_k_dominating(pts, 1)
        assert top[0] in set(skyline_numpy(pts).tolist())

    def test_k_capped_at_n(self):
        pts = np.ones((3, 2))
        assert top_k_dominating(pts, 10).size == 3

    def test_stable_ties(self):
        pts = np.ones((5, 2))  # nobody dominates anybody
        assert top_k_dominating(pts, 3).tolist() == [0, 1, 2]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_dominating(np.ones((2, 2)), 0)

    @given(clouds)
    @settings(max_examples=40)
    def test_property_ordering(self, pts):
        n = pts.shape[0]
        top = top_k_dominating(pts, n)

        def coverage(i):
            le = (pts[i] <= pts).all(axis=1)
            lt = (pts[i] < pts).any(axis=1)
            return int((le & lt).sum())

        covers = [coverage(i) for i in top]
        assert covers == sorted(covers, reverse=True)
