"""QuerySpec validation/canonicalisation and evaluate() vs brute force."""

import numpy as np
import pytest

from repro.core.skyband import k_skyband
from repro.core.skyline import skyline
from repro.serving.queries import QUERY_KINDS, QuerySpec, evaluate


def _snapshot(n=80, d=4, seed=0):
    rng = np.random.default_rng(seed)
    rows = rng.random((n, d)) + 0.01
    # Non-contiguous stable ids: the snapshot of a store that saw removals.
    ids = np.arange(3, 3 + 2 * n, 2, dtype=np.intp)
    return ids, rows


class TestQuerySpecValidation:
    def test_default_is_skyline(self):
        spec = QuerySpec(dataset="qws")
        assert spec.kind == "skyline"
        assert spec.params_key() == ()

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError, match="dataset"):
            QuerySpec(dataset="")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            QuerySpec(dataset="qws", kind="top-k")

    @pytest.mark.parametrize("k", [None, 0, -3])
    def test_skyband_needs_positive_k(self, k):
        with pytest.raises(ValueError, match="skyband"):
            QuerySpec(dataset="qws", kind="skyband", k=k)

    def test_skyband_k_coerced_to_int(self):
        assert QuerySpec(dataset="qws", kind="skyband", k=2.0).k == 2

    def test_constrained_needs_both_bounds(self):
        with pytest.raises(ValueError, match="lower and upper"):
            QuerySpec(dataset="qws", kind="constrained", lower=(0.0, 0.0))

    def test_constrained_bound_lengths_must_match(self):
        with pytest.raises(ValueError, match="equal length"):
            QuerySpec(
                dataset="qws", kind="constrained",
                lower=(0.0,), upper=(1.0, 1.0),
            )

    def test_constrained_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="lower bound"):
            QuerySpec(
                dataset="qws", kind="constrained",
                lower=(0.5, 0.0), upper=(0.1, 1.0),
            )

    def test_subspace_needs_dims(self):
        with pytest.raises(ValueError, match="dimension"):
            QuerySpec(dataset="qws", kind="subspace", dims=())

    def test_subspace_duplicate_dims_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            QuerySpec(dataset="qws", kind="subspace", dims=(1, 1))

    def test_subspace_dims_canonicalised_sorted(self):
        spec = QuerySpec(dataset="qws", kind="subspace", dims=(3, 0, 2))
        assert spec.dims == (0, 2, 3)


class TestCacheIdentity:
    def test_cache_key_includes_generation(self):
        spec = QuerySpec(dataset="qws")
        assert spec.cache_key(1) != spec.cache_key(2)
        assert spec.cache_key(3) == ("qws", "skyline", (), 3)

    def test_equivalent_specs_share_a_key(self):
        a = QuerySpec(dataset="qws", kind="subspace", dims=(2, 0))
        b = QuerySpec(dataset="qws", kind="subspace", dims=(0, 2))
        assert a.cache_key(5) == b.cache_key(5)

    def test_describe_mentions_dataset_and_kind(self):
        spec = QuerySpec(dataset="qws", kind="skyband", k=3)
        assert "qws" in spec.describe()
        assert "skyband" in spec.describe()

    def test_to_dict_round_trips_params(self):
        spec = QuerySpec(
            dataset="qws", kind="constrained",
            lower=(0.0, 0.0), upper=(0.5, 0.5),
        )
        record = spec.to_dict()
        assert record["lower"] == [0.0, 0.0]
        assert record["upper"] == [0.5, 0.5]


class TestEvaluate:
    def test_empty_snapshot_is_empty(self):
        for kind, extra in [
            ("skyline", {}),
            ("skyband", {"k": 2}),
            ("subspace", {"dims": (0,)}),
        ]:
            spec = QuerySpec(dataset="qws", kind=kind, **extra)
            assert evaluate(spec, np.empty(0, dtype=np.intp), np.empty((0, 4))) == []

    def test_mismatched_snapshot_rejected(self):
        ids, rows = _snapshot()
        with pytest.raises(ValueError, match="snapshot mismatch"):
            evaluate(QuerySpec(dataset="qws"), ids[:-1], rows)

    def test_skyline_matches_core(self):
        ids, rows = _snapshot()
        got = evaluate(QuerySpec(dataset="qws"), ids, rows)
        assert got == sorted(int(ids[i]) for i in skyline(rows))

    def test_skyband_matches_core(self):
        ids, rows = _snapshot()
        spec = QuerySpec(dataset="qws", kind="skyband", k=3)
        got = evaluate(spec, ids, rows)
        assert got == sorted(int(ids[i]) for i in k_skyband(rows, 3))

    def test_skyband_k1_is_the_skyline(self):
        ids, rows = _snapshot()
        sky = evaluate(QuerySpec(dataset="qws"), ids, rows)
        band = evaluate(QuerySpec(dataset="qws", kind="skyband", k=1), ids, rows)
        assert band == sky

    def test_constrained_matches_bruteforce(self):
        ids, rows = _snapshot()
        lower = tuple([0.2] * rows.shape[1])
        upper = tuple([0.9] * rows.shape[1])
        spec = QuerySpec(dataset="qws", kind="constrained", lower=lower, upper=upper)
        inside = np.flatnonzero(
            ((rows >= np.asarray(lower)) & (rows <= np.asarray(upper))).all(axis=1)
        )
        expected = sorted(int(ids[inside[j]]) for j in skyline(rows[inside]))
        assert evaluate(spec, ids, rows) == expected

    def test_constrained_empty_window(self):
        ids, rows = _snapshot()
        spec = QuerySpec(
            dataset="qws", kind="constrained",
            lower=(50.0,) * rows.shape[1], upper=(60.0,) * rows.shape[1],
        )
        assert evaluate(spec, ids, rows) == []

    def test_constrained_bound_arity_checked_against_data(self):
        ids, rows = _snapshot(d=4)
        spec = QuerySpec(
            dataset="qws", kind="constrained", lower=(0.0,), upper=(1.0,)
        )
        with pytest.raises(ValueError, match="dims"):
            evaluate(spec, ids, rows)

    def test_subspace_matches_projection(self):
        ids, rows = _snapshot()
        spec = QuerySpec(dataset="qws", kind="subspace", dims=(0, 2))
        expected = sorted(int(ids[i]) for i in skyline(rows[:, (0, 2)]))
        assert evaluate(spec, ids, rows) == expected

    def test_subspace_superset_of_fullspace(self):
        # Every full-space skyline point survives in any containing
        # superspace answer only for the projection of all dims; instead
        # check the projection onto all dims equals the full skyline.
        ids, rows = _snapshot()
        spec = QuerySpec(
            dataset="qws", kind="subspace", dims=tuple(range(rows.shape[1]))
        )
        assert evaluate(spec, ids, rows) == evaluate(
            QuerySpec(dataset="qws"), ids, rows
        )

    def test_subspace_out_of_range_dim_rejected(self):
        ids, rows = _snapshot(d=3)
        spec = QuerySpec(dataset="qws", kind="subspace", dims=(0, 9))
        with pytest.raises(ValueError, match="out of range"):
            evaluate(spec, ids, rows)

    def test_all_kinds_listed(self):
        assert set(QUERY_KINDS) == {"skyline", "skyband", "constrained", "subspace"}
