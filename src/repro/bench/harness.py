"""Experiment harness: cached workloads and single-run execution.

Every figure of the paper runs over the same workload family (the synthetic
QWS dataset, optionally extended, evaluated at attribute prefixes d = 2…10),
so the harness caches datasets and QoS matrices per ``(n, seed, d)`` —
re-generating 100 k services for each of 15 figure points would dominate the
benchmark run.

:func:`run_point` executes one (method, n, d, workers) cell and returns a
flat record with everything any figure needs: simulated phase times (the
paper's Hadoop-cluster seconds), measured driver times, dominance-test
counts, skyline sizes, and the §VI optimality metric.  Figures are then just
different column selections over a sweep of such records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

import numpy as np

from repro.core.mr_skyline import MRSkylineResult, run_mr_skyline
from repro.core.optimality import optimality_of_result
from repro.mapreduce.cluster import ClusterSpec
from repro.observability.report import summarize_spans
from repro.observability.tracing import get_tracer
from repro.services.qws import ServiceDataset, extend_dataset, generate_qws

__all__ = [
    "DEFAULT_CLUSTER",
    "DatasetCache",
    "default_cache",
    "run_point",
    "sweep",
]

#: Baseline simulated cluster for figure generation: the paper's smallest
#: configuration (4 slave servers, Hadoop-0.20-era slots/overheads).
#: ``speed_factor=100`` converts this machine's vectorised-NumPy task
#: seconds into 2009-era row-at-a-time Java seconds; it is calibrated so the
#: Figure-6 four-server point lands near the paper's ≈230 s (see DESIGN.md
#: §5 — the factor rescales every method identically, so the reproduced
#: *ratios* do not depend on it).
DEFAULT_CLUSTER = ClusterSpec(num_nodes=4, speed_factor=100.0)

#: Seeds used for the synthetic QWS base and its extension.
_BASE_SEED = 42
_EXTEND_SEED = 43

#: The paper's base dataset size (10,000 real services).
_BASE_N = 10_000


class DatasetCache:
    """Caches ServiceDatasets and minimisation matrices by (n, d)."""

    def __init__(self, base_seed: int = _BASE_SEED, extend_seed: int = _EXTEND_SEED):
        self._base_seed = base_seed
        self._extend_seed = extend_seed
        self._datasets: Dict[int, ServiceDataset] = {}
        self._matrices: Dict[Tuple[int, int], np.ndarray] = {}

    def dataset(self, n: int) -> ServiceDataset:
        """The synthetic QWS dataset at cardinality ``n``.

        ``n ≤ 10,000`` subsamples the base (the paper's "real" part);
        larger ``n`` extends it with the copula resampler, as the paper
        extends QWS to 100,000 services.
        """
        if n not in self._datasets:
            base = self._datasets.get(_BASE_N)
            if base is None:
                base = generate_qws(_BASE_N, seed=self._base_seed)
                self._datasets[_BASE_N] = base
            if n == _BASE_N:
                ds = base
            elif n < _BASE_N:
                ds = base.subset(n, seed=self._base_seed)
            else:
                ds = extend_dataset(base, n, seed=self._extend_seed)
            self._datasets[n] = ds
        return self._datasets[n]

    def matrix(self, n: int, d: int) -> np.ndarray:
        """Minimisation-oriented QoS matrix for (cardinality, dimension)."""
        key = (n, d)
        if key not in self._matrices:
            self._matrices[key] = self.dataset(n).qos_matrix(d)
        return self._matrices[key]

    def clear(self) -> None:
        self._datasets.clear()
        self._matrices.clear()


_GLOBAL_CACHE = DatasetCache()


def default_cache() -> DatasetCache:
    """The process-wide dataset cache shared by CLI and benchmarks."""
    return _GLOBAL_CACHE


@dataclass(frozen=True, slots=True)
class PointRecord:
    """One (method, n, d, workers) measurement."""

    method: str
    n: int
    d: int
    workers: int
    partitions: int
    sim_total_s: float
    sim_map_s: float
    sim_reduce_s: float
    driver_wall_s: float
    dominance_tests: int
    global_skyline: int
    local_skyline_total: int
    optimality: float
    points_pruned: int
    #: Per-phase trace breakdown (``summarize_spans`` output) when the run
    #: executed under an enabled tracer; ``None`` otherwise.
    trace_summary: Dict[str, Any] | None = None
    #: Engine execution policy the cell ran under.
    executor: str = "serial"
    pipelined: bool = False
    #: Dominance backend ("scalar" / "block") and broadcast filter-set size.
    kernel: str = "scalar"
    filter_points: int = 0

    @classmethod
    def from_result(
        cls,
        result: MRSkylineResult,
        *,
        n: int,
        d: int,
        cluster: ClusterSpec,
        trace_summary: Dict[str, Any] | None = None,
    ) -> "PointRecord":
        sim = result.simulate(cluster)
        report = optimality_of_result(result)
        return cls(
            method=result.method,
            n=n,
            d=d,
            workers=cluster.num_nodes,
            partitions=result.num_partitions,
            sim_total_s=sim.total_s,
            sim_map_s=sim.map_time_s,
            sim_reduce_s=sim.reduce_time_s,
            driver_wall_s=result.processing_time_s,
            dominance_tests=result.dominance_tests,
            global_skyline=int(result.global_indices.size),
            local_skyline_total=int(
                sum(v.size for v in result.local_skylines.values())
            ),
            optimality=report.optimality,
            points_pruned=result.points_pruned,
            trace_summary=trace_summary,
            executor=result.executor,
            pipelined=result.pipelined,
            kernel=result.kernel,
            filter_points=result.filter_points,
        )


def run_point(
    method: str,
    n: int,
    d: int,
    *,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    cache: DatasetCache | None = None,
    **mr_kwargs,
) -> PointRecord:
    """Execute one figure cell end to end on the simulated cluster.

    Under an enabled tracer each cell becomes a ``bench`` span, and the
    spans finishing inside it are summarized into the record's
    ``trace_summary`` (per-phase seconds/shares, task percentiles).
    """
    cache = cache or default_cache()
    matrix = cache.matrix(n, d)
    tracer = get_tracer()
    with tracer.capture() as spans:
        with tracer.span(
            "bench.point",
            kind="bench",
            method=method,
            n=n,
            d=d,
            workers=cluster.num_nodes,
        ):
            result = run_mr_skyline(
                matrix, method=method, num_workers=cluster.num_nodes, **mr_kwargs
            )
    trace_summary = summarize_spans(spans) if tracer.enabled else None
    return PointRecord.from_result(
        result, n=n, d=d, cluster=cluster, trace_summary=trace_summary
    )


def sweep(
    methods: Iterable[str],
    n: int,
    dims: Iterable[int],
    *,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    cache: DatasetCache | None = None,
    **mr_kwargs,
) -> List[PointRecord]:
    """The cross-product sweep behind Figures 5 and 7."""
    records: List[PointRecord] = []
    for d in dims:
        for method in methods:
            records.append(
                run_point(
                    method, n, d, cluster=cluster, cache=cache, **mr_kwargs
                )
            )
    return records
