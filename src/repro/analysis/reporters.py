"""Lint output renderers: human text and machine JSON.

The JSON document is the CI artifact format: a versioned envelope with one
record per finding (including its baseline fingerprint) plus the run
summary, so a workflow can both gate on ``exit_code`` and diff reports
across commits.
"""

from __future__ import annotations

import json
import os
from typing import List

from repro.analysis.engine import LintResult

JSON_VERSION = 1


def render_text(result: LintResult, *, root: str | None = None) -> str:
    """GCC-style ``path:line:col: severity rule: message`` lines + summary."""
    lines: List[str] = []
    for finding in result.findings:
        path = _display_path(finding.path, root)
        where = f" [{finding.symbol}]" if finding.symbol else ""
        lines.append(
            f"{path}:{finding.line}:{finding.col}: "
            f"{finding.severity.value} {finding.rule_id}: "
            f"{finding.message}{where}"
        )
    summary = result.summary()
    lines.append(
        f"{summary['findings']} finding(s) "
        f"({summary['errors']} error(s)) in {summary['files']} file(s); "
        f"{summary['suppressed']} suppressed, "
        f"{summary['baselined']} baselined"
    )
    return "\n".join(lines)


def render_json(result: LintResult, *, root: str | None = None) -> str:
    """Versioned JSON envelope: findings + summary."""
    payload = {
        "version": JSON_VERSION,
        "findings": [
            {**f.as_dict(), "path": _display_path(f.path, root)}
            for f in result.findings
        ],
        "summary": result.summary(),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _display_path(path: str, root: str | None) -> str:
    if root:
        try:
            rel = os.path.relpath(path, root)
        except ValueError:  # different drive (Windows)
            return path
        if not rel.startswith(".."):
            return rel
    return path
