"""Deterministic, seedable fault injection for the MapReduce engine.

The paper's scaling claims (Fig. 6) assume the merge/reduce phase stays
healthy as servers scale; this module is the chaos plane that lets the test
suite *prove* the engine's answer does not depend on that assumption.  A
:class:`FaultPlan` describes which task attempts to sabotage and how; a
:class:`FaultInjector` turns the plan into per-attempt
:class:`FaultDecision` objects in the driver, and the picklable
:func:`apply_fault` wrapper applies the decision wherever the task body
actually runs (inline, worker thread, or worker process).

Determinism is the design center:

* Probabilistic rules draw from a PRNG seeded by a stable (BLAKE2) digest
  of ``(plan seed, job name, task id, attempt, rule index)`` — never from
  process-global randomness — so the same plan against the same job graph
  injects the same faults on every run, on every executor, regardless of
  pool scheduling order.
* Bounded rules ("crash the first N attempts") count injections per
  ``(job, task, rule)`` in the driver, where attempt numbers are issued
  sequentially, so counts cannot race even under pool executors.

Fault kinds (:data:`FAULT_KINDS`):

``crash``
    The attempt raises :class:`~repro.mapreduce.errors.TaskError` (cause
    :class:`InjectedFault`) *before* running the body, so a crashed attempt
    has no partial side effects.
``hang``
    The attempt sleeps ``hang_s`` before running the body.  When the run's
    :class:`~repro.mapreduce.types.RetryPolicy` sets a task timeout and the
    hang meets it, a *cooperative* hang sleeps exactly the timeout and
    raises :class:`~repro.mapreduce.errors.TaskTimeoutError` itself —
    keeping retry counts deterministic on every executor.  With
    ``cooperative=False`` the task really sleeps through the deadline and
    only the runner's driver-side watchdog can abandon it.
``slow``
    The attempt runs the body, then sleeps ``slow_s`` plus
    ``(slow_factor - 1) ×`` the body's duration — a straggler, the food of
    speculative execution.
``poison``
    An unbounded ``crash``: every attempt of the matching task fails, which
    terminally loses the task.  With ``RetryPolicy(on_lost="degrade")`` the
    job survives and flags the result partial; otherwise it raises
    :class:`~repro.mapreduce.errors.JobFailedError`.

Plans serialize to JSON (see :meth:`FaultPlan.to_dict` and
``docs/fault_tolerance.md`` for the schema) so chaos runs are scriptable:
``repro-skyline fig5a --quick --faults plan.json``.  A process-global
default plan (:func:`set_default_fault_plan`) reaches every runner the way
``REPRO_EXECUTOR`` reaches every executor choice.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Tuple

from repro.mapreduce.errors import TaskError, TaskTimeoutError
from repro.mapreduce.types import RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultDecision",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "MonotonicClock",
    "apply_fault",
    "get_default_fault_plan",
    "set_default_fault_plan",
    "stable_rng",
]

#: Recognised fault kinds, in documentation order.
FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "slow", "poison")

#: Task kinds a rule may target (``None`` in a rule means both).
_TASK_KINDS = ("map", "reduce")


class InjectedFault(Exception):
    """The cause carried by injected crash/poison faults.

    A distinct type so tests (and trace consumers) can tell injected
    failures from genuine user-code bugs; picklable with the default
    exception protocol so it survives process-pool transport.
    """


def stable_rng(seed: int, *parts: Any) -> random.Random:
    """A PRNG seeded by a stable digest of ``(seed, *parts)``.

    ``hash()`` is salted per process, so it cannot key cross-process
    determinism; this uses BLAKE2 over the ``repr`` of the key tuple
    instead.  Identical inputs produce identical streams on every
    interpreter, platform, and run.
    """
    digest = hashlib.blake2b(
        repr((seed,) + parts).encode("utf-8"), digest_size=8
    ).digest()
    return random.Random(int.from_bytes(digest, "big"))


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One match-and-inject rule of a :class:`FaultPlan`.

    Attributes
    ----------
    fault:
        One of :data:`FAULT_KINDS`.
    kind:
        Target task kind (``"map"`` / ``"reduce"``) or ``None`` for both.
    index:
        Target task index, or ``None`` for every index.
    job:
        Substring matched against the job name, or ``None`` for every job.
    times:
        Maximum injections per matching task (``1`` = crash-once, ``2`` =
        crash-twice, ...); ``None`` = unlimited.  ``poison`` ignores this
        and always injects.
    probability:
        Chance of injecting on an eligible attempt, drawn deterministically
        (see :func:`stable_rng`).  ``1.0`` injects on every eligible attempt.
    hang_s:
        Sleep length for ``hang`` faults.
    slow_factor / slow_s:
        For ``slow`` faults: the body's duration is stretched by
        ``slow_factor`` and padded by ``slow_s`` seconds.
    cooperative:
        ``hang`` only: whether the hung attempt observes the task timeout
        itself (deterministic on all executors) or truly sleeps through it,
        leaving only the driver-side watchdog (pool executors only).
    """

    fault: str
    kind: str | None = None
    index: int | None = None
    job: str | None = None
    times: int | None = 1
    probability: float = 1.0
    hang_s: float = 0.0
    slow_factor: float = 1.0
    slow_s: float = 0.0
    cooperative: bool = True

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault {self.fault!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind is not None and self.kind not in _TASK_KINDS:
            raise ValueError(
                f"unknown task kind {self.kind!r}; expected one of {_TASK_KINDS}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s}")
        if self.slow_factor < 1.0:
            raise ValueError(f"slow_factor must be >= 1, got {self.slow_factor}")
        if self.slow_s < 0:
            raise ValueError(f"slow_s must be >= 0, got {self.slow_s}")

    def matches(self, job_name: str, kind: str, index: int) -> bool:
        """Whether this rule targets the given task of the given job."""
        if self.kind is not None and self.kind != kind:
            return False
        if self.index is not None and self.index != index:
            return False
        if self.job is not None and self.job not in job_name:
            return False
        return True


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seed, an ordered rule list, and (optionally) the policy to run under.

    The embedded :class:`~repro.mapreduce.types.RetryPolicy` makes a plan
    file self-contained for CLI chaos runs: a runner constructed without an
    explicit policy adopts the plan's, so ``--faults plan.json`` carries
    both the faults and the retry budget that survives them.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    policy: RetryPolicy | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    # -- JSON round-trip ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (schema documented in docs/fault_tolerance.md)."""
        out: Dict[str, Any] = {
            "seed": self.seed,
            "faults": [
                {f.name: getattr(rule, f.name) for f in fields(FaultRule)}
                for rule in self.rules
            ],
        }
        if self.policy is not None:
            out["policy"] = {
                f.name: getattr(self.policy, f.name)
                for f in fields(RetryPolicy)
            }
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Parse a plan dict, rejecting unknown keys (schema enforcement)."""
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be an object, got {type(data).__name__}")
        known = {"seed", "faults", "policy"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        rule_fields = {f.name for f in fields(FaultRule)}
        rules = []
        for i, raw in enumerate(data.get("faults", ())):
            if not isinstance(raw, dict):
                raise ValueError(f"faults[{i}] must be an object")
            bad = set(raw) - rule_fields
            if bad:
                raise ValueError(f"faults[{i}] has unknown keys: {sorted(bad)}")
            rules.append(FaultRule(**raw))
        policy = None
        if data.get("policy") is not None:
            raw_policy = data["policy"]
            policy_fields = {f.name for f in fields(RetryPolicy)}
            bad = set(raw_policy) - policy_fields
            if bad:
                raise ValueError(f"policy has unknown keys: {sorted(bad)}")
            policy = RetryPolicy(**raw_policy)
            policy.validate()
        return cls(seed=int(data.get("seed", 0)), rules=tuple(rules), policy=policy)

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")


@dataclass(frozen=True, slots=True)
class FaultDecision:
    """One injector verdict for one task attempt — picklable, worker-bound.

    Computed in the driver (where determinism is enforceable) and shipped
    with the task submission; :func:`apply_fault` interprets it wherever
    the task body runs.
    """

    action: str
    task_id: str
    attempt: int
    hang_s: float = 0.0
    slow_factor: float = 1.0
    slow_s: float = 0.0
    cooperative: bool = True


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """Audit record of one injected fault (driver-side bookkeeping)."""

    job_name: str
    task_id: str
    attempt: int
    action: str
    rule_index: int


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-attempt decisions.

    Driver-only: :meth:`decide` is called from the runner's submission path
    (a single thread), so injection counts need no lock.  The injected-
    event log (:attr:`events`) is the ground truth chaos tests compare
    retry counters against.

    The first matching rule wins per attempt; later rules see the attempt
    only if earlier ones declined (exhausted ``times`` or probability
    draw).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.events: List[FaultEvent] = []
        #: (job_name, task_id, rule_index) -> injections so far.
        self._used: Dict[Tuple[str, str, int], int] = {}

    @property
    def injected(self) -> int:
        """Total faults injected so far."""
        return len(self.events)

    def injected_by_action(self) -> Dict[str, int]:
        """Injection counts per fault action (for counter assertions)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.action] = counts.get(event.action, 0) + 1
        return counts

    def decide(
        self, job_name: str, kind: str, index: int, attempt: int
    ) -> FaultDecision | None:
        """The fault (if any) to inject into one task attempt."""
        task_id = f"{kind}-{index}"
        for rule_index, rule in enumerate(self.plan.rules):
            if not rule.matches(job_name, kind, index):
                continue
            key = (job_name, task_id, rule_index)
            used = self._used.get(key, 0)
            if (
                rule.fault != "poison"
                and rule.times is not None
                and used >= rule.times
            ):
                continue
            if rule.probability < 1.0:
                rng = stable_rng(
                    self.plan.seed, job_name, task_id, attempt, rule_index
                )
                if rng.random() >= rule.probability:
                    continue
            self._used[key] = used + 1
            self.events.append(
                FaultEvent(job_name, task_id, attempt, rule.fault, rule_index)
            )
            return FaultDecision(
                action=rule.fault,
                task_id=task_id,
                attempt=attempt,
                hang_s=rule.hang_s,
                slow_factor=rule.slow_factor,
                slow_s=rule.slow_s,
                cooperative=rule.cooperative,
            )
        return None


def apply_fault(
    decision: FaultDecision,
    timeout_s: float | None,
    fn: Callable[..., Any],
    *args: Any,
) -> Any:
    """Execute one task attempt under an injected fault.

    Module-level and argument-picklable, so the same wrapper runs inline,
    in a worker thread, or in a worker process.  ``fn(*args)`` is the real
    task body (e.g. :func:`~repro.mapreduce.tasks.execute_map_task`).
    """
    if decision.action in ("crash", "poison"):
        raise TaskError(
            decision.task_id,
            InjectedFault(
                f"injected {decision.action} (attempt {decision.attempt})"
            ),
        )
    if decision.action == "hang":
        if (
            decision.cooperative
            and timeout_s is not None
            and decision.hang_s >= timeout_s
        ):
            # Cooperative hang: observe the deadline exactly, so retry
            # counts are identical on inline and pool executors.
            time.sleep(timeout_s)
            raise TaskTimeoutError(decision.task_id, timeout_s)
        time.sleep(decision.hang_s)
        return fn(*args)
    if decision.action == "slow":
        start = time.perf_counter()
        result = fn(*args)
        body_s = time.perf_counter() - start
        extra = decision.slow_s + body_s * (decision.slow_factor - 1.0)
        if extra > 0:
            time.sleep(extra)
        return result
    raise ValueError(f"unknown fault action {decision.action!r}")


class MonotonicClock:
    """The runner's default clock: real monotonic time, real sleeps.

    Tests substitute a fake with the same two-method surface to assert
    backoff spacing without waiting for it.
    """

    __slots__ = ()

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


# -- process-global default plan -------------------------------------------------
#
# Mirrors REPRO_EXECUTOR: the CLI's --faults installs a plan here, and every
# Runner constructed without an explicit plan picks it up, so chaos reaches
# the benchmark pipelines without threading a parameter through every layer.

_default_plan: FaultPlan | None = None


def get_default_fault_plan() -> FaultPlan | None:
    """The process-wide fault plan, or ``None`` when chaos is off."""
    return _default_plan


def set_default_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install (or, with ``None``, clear) the process-wide fault plan.

    Returns the previous plan so callers can restore it.
    """
    global _default_plan
    previous = _default_plan
    _default_plan = plan
    return previous
