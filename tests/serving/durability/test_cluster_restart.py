"""Shard restart with generation-vector continuity.

Two storylines over a durable :class:`LocalCluster`:

* **continuity** — kill a shard, restart it on its old port, and the
  recovered shard answers at its pre-crash generations: no query
  degrades, every query kind stays id-for-id, and post-restart inserts
  keep drawing ids the coordinator's shard map already agrees with;
* **regression detection** — a shard restarted from *damaged* durability
  state (its WAL rolled back under it) answers below the generation the
  coordinator has observed; the coordinator must treat that leg as lost
  rather than merge silently-stale data, and the placement's
  generation vector must never regress.
"""

import os

import numpy as np
import pytest

from repro.observability.metrics import get_metrics
from repro.serving.cluster import ClusterConfig, ClusterCoordinator, LocalCluster
from repro.serving.queries import QuerySpec

DATASET = "fleet"
DIMS = 3


def _points(n=40, seed=11):
    return np.random.default_rng(seed).random((n, DIMS)) + 0.01


def _specs():
    return [
        QuerySpec(dataset=DATASET),
        QuerySpec(dataset=DATASET, kind="skyband", k=2),
        QuerySpec(
            dataset=DATASET,
            kind="constrained",
            lower=(0.0,) * DIMS,
            upper=(0.8,) * DIMS,
        ),
        QuerySpec(dataset=DATASET, kind="subspace", dims=(0, 1)),
    ]


def _config():
    # cache_entries=0: every query is a real fan-out, so post-restart
    # answers come from the recovered shard, not the coordinator cache.
    return ClusterConfig(shard_timeout_s=5.0, cache_entries=0)


def _answers(coordinator):
    out = {}
    for spec in _specs():
        response = coordinator.query(spec)
        assert not response.degraded, (spec.kind, response.missing_shards)
        out[spec.kind] = (response.ids, response.generations)
    return out


def _redial(coordinator, *, attempts=8):
    """Drain the coordinator's dead pooled connections after a restart.

    Endpoint recovery is by design lazy — a pooled connection severed by
    the crash fails exactly one leg, then the endpoint dials fresh — so a
    few throwaway queries absorb the stale sockets deterministically.
    """
    for _ in range(attempts):
        if not coordinator.query(QuerySpec(dataset=DATASET)).degraded:
            return
    raise AssertionError(f"coordinator still degraded after {attempts} redials")


class TestRestartContinuity:
    def test_recovered_shard_answers_id_for_id(self, tmp_path):
        rows = _points()
        with LocalCluster(2, data_dir=str(tmp_path), fsync="always") as fleet:
            with ClusterCoordinator(fleet.addresses(), config=_config()) as coord:
                gvec = coord.register(DATASET, rows, shard_fn="angle")
                assert gvec == (1, 1)
                inserted = [
                    coord.insert(DATASET, [0.02 + 0.01 * i] * DIMS)[0]
                    for i in range(4)
                ]
                pre = _answers(coord)

                fleet.kill(0)
                address = fleet.restart(0)
                assert address == fleet.addresses()[0], "same port after restart"
                _redial(coord)

                post = _answers(coord)
                assert post == pre, "restart changed an answer or a generation"

                # The id clock survives too: the next insert draws a fresh
                # global id past everything recovered, on either shard.
                new_id, new_gvec = coord.insert(DATASET, [0.001] * DIMS)
                assert new_id == rows.shape[0] + len(inserted)
                assert all(
                    g >= old for g, old in zip(new_gvec, pre["skyline"][1])
                ), "generation vector regressed after restart"
                fresh = coord.query(QuerySpec(dataset=DATASET))
                assert new_id in fresh.ids

    def test_both_shards_survive_sequential_restarts(self, tmp_path):
        rows = _points(seed=12)
        with LocalCluster(2, data_dir=str(tmp_path), fsync="always") as fleet:
            with ClusterCoordinator(fleet.addresses(), config=_config()) as coord:
                coord.register(DATASET, rows, shard_fn="angle")
                coord.insert(DATASET, [0.015] * DIMS)
                pre = _answers(coord)
                for shard in (0, 1):
                    fleet.kill(shard)
                    fleet.restart(shard)
                    _redial(coord)
                    assert _answers(coord) == pre, f"shard {shard} restart drifted"


class TestGenerationRegression:
    def test_rolled_back_shard_is_quarantined_not_merged(self, tmp_path):
        rows = _points(seed=13)
        with LocalCluster(2, data_dir=str(tmp_path), fsync="always") as fleet:
            with ClusterCoordinator(fleet.addresses(), config=_config()) as coord:
                coord.register(DATASET, rows, shard_fn="angle")
                wal_paths = [
                    os.path.join(
                        str(tmp_path), f"shard-{i:02d}", DATASET, "wal.log"
                    )
                    for i in range(2)
                ]
                pristine = [open(p, "rb").read() for p in wal_paths]

                # Mutate until some shard has acknowledged an insert the
                # pristine WAL image knows nothing about.
                victim = coord.insert(DATASET, [0.03] * DIMS)[1].index(2)
                pre = coord.query(QuerySpec(dataset=DATASET))
                observed_gvec = pre.generations

                # Crash the victim and roll its WAL back to the pre-insert
                # image: the restarted shard recovers at generation 1 while
                # the coordinator has observed 2 — silent data loss unless
                # the coordinator notices.
                fleet.kill(victim)
                open(wal_paths[victim], "wb").write(pristine[victim])
                fleet.restart(victim)

                # The first post-restart legs may fail on the severed
                # pooled sockets; once the endpoint redials, the stale
                # shard *answers* — and must be quarantined, not merged.
                counter = get_metrics().counter(
                    "serve.cluster.generation_regressed"
                )
                before = counter.value
                for _ in range(8):
                    response = coord.query(QuerySpec(dataset=DATASET))
                    assert response.degraded, "stale shard must not merge clean"
                    assert response.missing_shards == [victim]
                    if counter.value > before:
                        break
                else:
                    raise AssertionError(
                        "regressed shard never reached the quarantine path"
                    )
                # The placement's max-merge gvec holds its ground.
                assert response.generations == observed_gvec
