"""Engine-level tracing integration: real pipelines under an enabled tracer."""

import numpy as np
import pytest

from repro.core.mr_skyline import run_mr_skyline
from repro.mapreduce import (
    Job,
    JobConf,
    JobFailedError,
    Mapper,
    MultiprocessRunner,
    Reducer,
    SerialRunner,
)
from repro.observability import enable_tracing
from repro.observability.metrics import get_metrics
from repro.observability.report import summarize_spans
from repro.observability.tracing import Tracer, set_tracer


def _points(n=1000, d=4, seed=11):
    return np.random.default_rng(seed).random((n, d))


class TestTracedPipeline:
    def test_mr_angle_emits_full_span_tree(self):
        tracer = set_tracer(Tracer(keep_spans=True))
        result = run_mr_skyline(_points(), method="angle", num_workers=4)
        spans = tracer.finished

        kinds = {s.kind for s in spans}
        assert {"pipeline", "job", "phase", "task", "partition"} <= kinds
        phases = {s.attrs.get("phase") for s in spans if s.kind == "phase"}
        assert phases == {"map", "shuffle", "reduce"}

        # One job span per chained MapReduce job, each with phase children.
        job_spans = [s for s in spans if s.kind == "job"]
        assert len(job_spans) == len(result.chain.results)
        by_id = {s.span_id: s for s in spans}
        for job in job_spans:
            children = [s for s in spans if s.parent_id == job.span_id]
            assert {s.attrs.get("phase") for s in children} == {
                "map",
                "shuffle",
                "reduce",
            }
            # Per-job: the phases partition the job wall (sum never exceeds
            # it; gaps are framework glue between phases).
            phase_sum = sum(s.duration_s for s in children)
            assert phase_sum <= job.duration_s
            assert job.duration_s - phase_sum < 0.05

        # Every task span nests under a phase of the right kind.
        for task in (s for s in spans if s.kind == "task"):
            parent = by_id[task.parent_id]
            assert parent.kind == "phase"
            assert task.name.startswith(parent.attrs["phase"].split("-")[0][:3])

        # The pipeline root carries the skew gauges and result shape.
        root = next(s for s in spans if s.kind == "pipeline")
        assert root.attrs["scheme"] == "angle"
        assert root.attrs["n"] == 1000
        assert root.attrs["d"] == 4
        assert root.attrs["global_skyline"] == result.global_indices.size
        assert root.attrs["skew_max_min_ratio"] >= 1.0

    def test_phase_durations_sum_consistently_with_job_wall(self):
        tracer = set_tracer(Tracer(keep_spans=True))
        run_mr_skyline(_points(), method="angle", num_workers=4)
        summary = summarize_spans(tracer.finished)
        assert summary["jobs"] >= 2
        assert summary["tasks"] > 0
        assert summary["errors"] == 0
        job_wall = sum(s.duration_s for s in tracer.finished if s.kind == "job")
        phases_sum = sum(summary["phase_s"].values())
        assert phases_sum <= job_wall
        assert abs(job_wall - phases_sum) < 0.05

    def test_skew_gauges_and_dominance_histogram_recorded(self):
        set_tracer(Tracer(keep_spans=True))
        # Pinned to the serial executor: the per-task dominance histogram is
        # recorded inside reducer workers, so a pool executor's driver-side
        # registry never sees it (only the measurement path does).
        run_mr_skyline(_points(), method="angle", num_workers=4, executor="serial")
        snap = get_metrics().snapshot()
        assert snap["gauges"]["partition.records_max"] > 0
        assert snap["gauges"]["partition.max_min_ratio"] >= 1.0
        hist = snap["histograms"]["skyline.dominance_tests_per_task"]
        assert hist["count"] > 0
        assert snap["counters"]["skyline.local_dominance_tests"] > 0

    def test_trace_file_written(self, tmp_path):
        path = tmp_path / "run.jsonl"
        enable_tracing(str(path))
        run_mr_skyline(_points(200, 3), method="grid", num_workers=2)
        from repro.observability import disable_tracing, load_trace

        disable_tracing(write_metrics=True)
        spans, snapshot = load_trace(str(path))
        assert any(s.kind == "job" for s in spans)
        assert snapshot is not None
        assert "partition.max_min_ratio" in snapshot["gauges"]

    def test_disabled_tracer_produces_nothing(self):
        # The default (disabled) tracer must stay silent through a full run.
        result = run_mr_skyline(_points(200, 3), method="angle", num_workers=2)
        assert result.global_indices.size > 0


class _CrashMapper(Mapper):
    def map(self, key, value, ctx):
        if value == "x":
            raise RuntimeError("poisoned record")
        ctx.emit(value, 1)


class _CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _crash_job(maps=3):
    return Job(
        name="crashy",
        mapper=_CrashMapper,
        reducer=_CountReducer,
        conf=JobConf(num_reducers=1, num_map_tasks=maps),
    )


RECORDS = [(None, "a"), (None, "b"), (None, "x")]


class TestFailedJobTraces:
    def test_serial_failure_leaves_partial_trace(self):
        tracer = set_tracer(Tracer(keep_spans=True))
        with pytest.raises(JobFailedError) as info:
            SerialRunner().run(_crash_job(), records=RECORDS)
        spans = tracer.finished
        # The healthy tasks finished with ok status before the poisoned one.
        ok_tasks = [s for s in spans if s.kind == "task" and s.status == "ok"]
        err_tasks = [s for s in spans if s.kind == "task" and s.status == "error"]
        assert len(ok_tasks) == 2
        assert len(err_tasks) == 1
        # Enclosing phase/job spans closed as errors (partial, not missing).
        assert [s.status for s in spans if s.kind == "phase"] == ["error"]
        assert [s.status for s in spans if s.kind == "job"] == ["error"]
        # Completed-task timings survive on the exception itself.
        assert len(info.value.completed_stats) == 2
        assert all(st.duration_s >= 0 for st in info.value.completed_stats)

    def test_serial_retries_appear_as_attempt_spans(self):
        tracer = set_tracer(Tracer(keep_spans=True))
        with pytest.raises(JobFailedError):
            SerialRunner(max_task_retries=2).run(_crash_job(), records=RECORDS)
        attempts = [
            s.attrs["attempt"]
            for s in tracer.finished
            if s.kind == "task" and s.status == "error"
        ]
        assert attempts == [1, 2, 3]
        assert get_metrics().counter("task.map.failures").value == 3

    def test_multiprocess_failure_keeps_completed_task_spans(self):
        tracer = set_tracer(Tracer(keep_spans=True))
        with pytest.raises(JobFailedError) as info:
            MultiprocessRunner(num_workers=2).run(_crash_job(), records=RECORDS)
        spans = tracer.finished
        task_spans = [s for s in spans if s.kind == "task"]
        # Healthy map tasks reported back as synthetic spans; the failed
        # task left an explicit error span.
        assert sum(1 for s in task_spans if s.status == "ok") == 2
        failed = [s for s in task_spans if s.status == "error"]
        assert len(failed) == 1
        assert "poisoned record" in failed[0].attrs["error"]
        assert all(s.attrs.get("synthetic") for s in task_spans)
        # Stats of completed tasks ride on the exception for post-mortems.
        assert len(info.value.completed_stats) == 2

    def test_multiprocess_success_task_spans_match_serial_counts(self):
        tracer = set_tracer(Tracer(keep_spans=True))
        records = [(None, "a"), (None, "b"), (None, "c")]
        MultiprocessRunner(num_workers=2).run(_crash_job(), records=records)
        task_spans = [s for s in tracer.finished if s.kind == "task"]
        assert len(task_spans) == 4  # 3 map + 1 reduce
        assert all(s.attrs.get("synthetic") for s in task_spans)
        assert all(s.duration_ns >= 0 for s in task_spans)


class TestBenchTraceSummary:
    def test_run_point_attaches_summary(self):
        set_tracer(Tracer())
        from repro.bench.harness import run_point

        rec = run_point("angle", 500, 3)
        assert rec.trace_summary is not None
        assert rec.trace_summary["jobs"] >= 2
        assert rec.trace_summary["phase_s"]["reduce"] > 0

    def test_run_point_without_tracing(self):
        from repro.bench.harness import run_point

        rec = run_point("angle", 500, 3)
        assert rec.trace_summary is None
