"""File-based skyline pipeline: text datasets in, committed results out.

The in-memory driver (:func:`repro.core.mr_skyline.run_mr_skyline`) hands
point blocks straight to the engine.  This module is the fully Hadoop-shaped
alternative: the dataset lives as CSV lines in the block filesystem, map
tasks are created per file block by :class:`TextInputFormat`, each mapper
*parses* its lines, and the final skyline is committed through
:class:`TextOutputFormat` with part files and a ``_SUCCESS`` marker —
exactly the artefact layout a Hadoop job leaves in HDFS.

Intended for moderate cardinalities (every point is one text record); the
block-based in-memory path remains the fast lane for the benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

import numpy as np

from repro.core.dominance import validate_points
from repro.core.mr_skyline import (
    COUNTER_GROUP,
    GlobalMergeMapper,
    GlobalMergeReducer,
    LocalSkylineReducer,
    default_partition_count,
)
from repro.core.partitioning import GridPartitioner, SpacePartitioner, make_partitioner
from repro.mapreduce.counters import Counters
from repro.mapreduce.fs import BlockFileSystem
from repro.mapreduce.inputs import TextInputFormat
from repro.mapreduce.job import ChainResult, Job, JobConf
from repro.mapreduce.outputs import TextOutputFormat, read_text_output
from repro.mapreduce.partitioner import KeyFieldPartitioner, SingleReducerPartitioner
from repro.mapreduce.runner import Runner, SerialRunner
from repro.mapreduce.tasks import MapContext, Mapper

__all__ = [
    "FileSkylineResult",
    "ParsePointMapper",
    "read_skyline_output",
    "run_mr_skyline_files",
    "write_points_csv",
]


def write_points_csv(
    fs: BlockFileSystem, path: str, points: np.ndarray, *, overwrite: bool = False
) -> None:
    """Store a point matrix as one CSV line per point."""
    pts = validate_points(points)
    lines = "\n".join(",".join(f"{v:.17g}" for v in row) for row in pts)
    fs.write_text(path, lines + ("\n" if lines else ""), overwrite=overwrite)


class ParsePointMapper(Mapper):
    """Parses one CSV line into a point and routes it to its partition.

    Input records are ``(byte_offset, line)`` from :class:`TextInputFormat`;
    the byte offset doubles as the point's stable id (unique per line, as in
    Hadoop).  Params: ``partitioner``, optional ``pruned`` cell set.
    """

    def map(self, key: Any, value: str, ctx: MapContext) -> None:
        if not value.strip():
            return
        row = np.array(
            [float(tok) for tok in value.split(",")], dtype=np.float64
        )
        partitioner: SpacePartitioner = self.params["partitioner"]
        pruned: frozenset = self.params.get("pruned", frozenset())
        pid = int(partitioner.assign(row.reshape(1, -1))[0])
        ctx.increment(COUNTER_GROUP, "points_mapped")
        if pid in pruned:
            ctx.increment(COUNTER_GROUP, "points_pruned")
            return
        ctx.emit(pid, (np.array([key], dtype=np.intp), row.reshape(1, -1)))


@dataclass(slots=True)
class FileSkylineResult:
    """Outcome of a file-to-file skyline run."""

    output_dir: str
    part_paths: List[str]
    skyline_offsets: np.ndarray  # byte offsets of skyline lines, ascending
    skyline_points: np.ndarray
    chain: ChainResult
    counters: Counters


def run_mr_skyline_files(
    fs: BlockFileSystem,
    input_path: str,
    output_dir: str,
    *,
    method: str = "angle",
    num_workers: int = 4,
    num_partitions: int | None = None,
    runner: Runner | None = None,
    window_size: int | None = None,
    prune_grid_cells: bool = True,
    overwrite: bool = False,
) -> FileSkylineResult:
    """Run the full skyline pipeline from a CSV file to a committed output.

    The output directory receives Hadoop-style ``part-r-*`` files (one line
    per skyline point: ``<byte_offset>\\t<csv coordinates>``) plus the
    ``_SUCCESS`` marker.
    """
    if num_partitions is None:
        num_partitions = default_partition_count(num_workers)
    runner = runner or SerialRunner()

    # Fit the partitioner on a driver-side scan (Hadoop would sample or use
    # dataset statistics; the block filesystem makes the scan cheap).
    rows = [
        np.array([float(tok) for tok in line.split(",")])
        for line in fs.iter_lines(input_path)
        if line.strip()
    ]
    points = (
        np.vstack(rows) if rows else np.empty((0, 1), dtype=np.float64)
    )
    partitioner = make_partitioner(method, num_partitions)
    partitioner.fit(points)

    pruned: frozenset = frozenset()
    if prune_grid_cells and isinstance(partitioner, GridPartitioner):
        pruned = frozenset(int(c) for c in partitioner.pruned_cells())

    job1 = Job(
        name=f"mr-{partitioner.scheme}-partition-files",
        mapper=ParsePointMapper,
        reducer=LocalSkylineReducer,
        conf=JobConf(
            num_reducers=partitioner.num_partitions,
            partitioner=KeyFieldPartitioner(),
            params={
                "partitioner": partitioner,
                "pruned": pruned,
                "window_size": window_size,
            },
        ),
    )
    result1 = runner.run(job1, input_format=TextInputFormat(fs, input_path))

    intermediate = list(result1.output_pairs())
    job2 = Job(
        name=f"mr-{partitioner.scheme}-merge-files",
        mapper=GlobalMergeMapper,
        reducer=GlobalMergeReducer,
        conf=JobConf(
            num_reducers=1,
            num_map_tasks=max(1, min(num_workers, max(len(intermediate), 1))),
            partitioner=SingleReducerPartitioner(),
            params={"window_size": window_size},
        ),
    )
    result2 = runner.run(job2, records=intermediate)

    # Flatten the merge output into one text pair per skyline point before
    # committing (block values would not render usefully as text).
    blocks = list(result2.output_values())
    if blocks:
        offsets = np.concatenate([b[0] for b in blocks]).astype(np.intp)
        coords = np.vstack([b[1] for b in blocks])
        order = np.argsort(offsets)
        offsets, coords = offsets[order], coords[order]
    else:
        offsets = np.empty(0, dtype=np.intp)
        coords = points[:0]

    import dataclasses

    flat_result = dataclasses.replace(
        result2,
        outputs=[
            [
                (int(off), ",".join(f"{v:.17g}" for v in row))
                for off, row in zip(offsets, coords)
            ]
        ],
    )
    fmt = TextOutputFormat(fs, output_dir)
    part_paths = fmt.write(flat_result, overwrite=overwrite)

    counters = Counters()
    counters.merge(result1.counters)
    counters.merge(result2.counters)
    return FileSkylineResult(
        output_dir=output_dir,
        part_paths=part_paths,
        skyline_offsets=offsets,
        skyline_points=coords,
        chain=ChainResult(results=[result1, result2]),
        counters=counters,
    )


def read_skyline_output(
    fs: BlockFileSystem, output_dir: str
) -> tuple[np.ndarray, np.ndarray]:
    """Read a committed skyline back as ``(offsets, points)``."""
    pairs = read_text_output(fs, output_dir)
    if not pairs:
        return np.empty(0, dtype=np.intp), np.empty((0, 0))
    offsets = np.array([int(k) for k, _ in pairs], dtype=np.intp)
    points = np.vstack(
        [np.array([float(tok) for tok in v.split(",")]) for _, v in pairs]
    )
    order = np.argsort(offsets)
    return offsets[order], points[order]
