"""An in-memory block filesystem standing in for HDFS.

Files are stored as fixed-size byte blocks (default 1 MiB — scaled down from
HDFS's 64 MiB so laptop-scale datasets still produce multi-block files and
therefore multi-split map phases).  The engine's :class:`TextInputFormat`
asks the filesystem for block boundaries to build input splits, mirroring how
Hadoop aligns splits with HDFS blocks.

Paths are ``/``-separated and absolute; directories exist implicitly (an
object-store model).  The filesystem is process-local; multiprocess map tasks
receive their split payloads by value, matching how the serial engine feeds
tasks, so no cross-process filesystem is required.
"""

from __future__ import annotations

import posixpath
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.mapreduce.errors import FileSystemError

DEFAULT_BLOCK_SIZE = 1 << 20

_PATH_RE = re.compile(r"^/[^\0]*$")


def _normalize(path: str) -> str:
    if not isinstance(path, str) or not _PATH_RE.match(path):
        raise FileSystemError(f"invalid path {path!r}: must be absolute")
    norm = posixpath.normpath(path)
    if norm == "/":
        raise FileSystemError("the root directory is not a file path")
    return norm


@dataclass(frozen=True, slots=True)
class FileStatus:
    """Metadata for one stored file."""

    path: str
    size: int
    num_blocks: int
    block_size: int


@dataclass(frozen=True, slots=True)
class BlockLocation:
    """One block's byte range within its file."""

    index: int
    offset: int
    length: int


class BlockFileSystem:
    """In-memory block store with an HDFS-flavoured API."""

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size <= 0:
            raise FileSystemError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        self._files: Dict[str, List[bytes]] = {}

    # -- writing ---------------------------------------------------------------

    def write(self, path: str, data: bytes, *, overwrite: bool = False) -> FileStatus:
        """Store ``data`` at ``path``, splitting it into blocks."""
        norm = _normalize(path)
        if norm in self._files and not overwrite:
            raise FileSystemError(f"path exists and overwrite=False: {norm}")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise FileSystemError(
                f"write() needs bytes, got {type(data).__name__}; "
                "use write_text() for strings"
            )
        raw = bytes(data)
        blocks = [
            raw[i : i + self.block_size] for i in range(0, len(raw), self.block_size)
        ] or [b""]
        self._files[norm] = blocks
        return self.status(norm)

    def write_text(
        self, path: str, text: str, *, overwrite: bool = False
    ) -> FileStatus:
        """Store UTF-8 text at ``path``."""
        return self.write(path, text.encode("utf-8"), overwrite=overwrite)

    def append(self, path: str, data: bytes) -> FileStatus:
        """Append bytes to an existing file (re-blocking the tail)."""
        norm = _normalize(path)
        current = self.read(norm) if norm in self._files else b""
        return self.write(norm, current + bytes(data), overwrite=True)

    # -- reading ---------------------------------------------------------------

    def read(self, path: str) -> bytes:
        """Return the full contents of ``path``."""
        return b"".join(self._blocks_of(path))

    def read_text(self, path: str) -> str:
        return self.read(path).decode("utf-8")

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset`` (clamped at EOF)."""
        if offset < 0 or length < 0:
            raise FileSystemError(f"negative range ({offset}, {length})")
        blocks = self._blocks_of(path)
        out: list[bytes] = []
        remaining = length
        pos = 0
        for block in blocks:
            if remaining <= 0:
                break
            end = pos + len(block)
            if end > offset:
                start_in_block = max(0, offset - pos)
                take = block[start_in_block : start_in_block + remaining]
                out.append(take)
                remaining -= len(take)
            pos = end
        return b"".join(out)

    def iter_lines(self, path: str) -> Iterator[str]:
        """Yield text lines (without trailing newlines) from ``path``."""
        text = self.read_text(path)
        if not text:
            return
        for line in text.split("\n"):
            yield line

    # -- metadata ----------------------------------------------------------------

    def exists(self, path: str) -> bool:
        try:
            return _normalize(path) in self._files
        except FileSystemError:
            return False

    def status(self, path: str) -> FileStatus:
        blocks = self._blocks_of(path)
        return FileStatus(
            path=_normalize(path),
            size=sum(len(b) for b in blocks),
            num_blocks=len(blocks),
            block_size=self.block_size,
        )

    def block_locations(self, path: str) -> List[BlockLocation]:
        """Byte ranges of every block — the seams along which splits align."""
        blocks = self._blocks_of(path)
        locations = []
        offset = 0
        for i, block in enumerate(blocks):
            locations.append(BlockLocation(index=i, offset=offset, length=len(block)))
            offset += len(block)
        return locations

    def ls(self, prefix: str = "/") -> List[str]:
        """All file paths under ``prefix`` (inclusive), sorted."""
        if prefix != "/":
            prefix = _normalize(prefix)
        match = prefix if prefix.endswith("/") else prefix + "/"
        return sorted(
            p for p in self._files if p == prefix or p.startswith(match)
        )

    # -- mutation ----------------------------------------------------------------

    def delete(self, path: str) -> None:
        norm = _normalize(path)
        if norm not in self._files:
            raise FileSystemError(f"no such file: {norm}")
        del self._files[norm]

    def delete_prefix(self, prefix: str) -> int:
        """Delete every file under ``prefix``; returns the count removed."""
        victims = self.ls(prefix)
        for p in victims:
            del self._files[p]
        return len(victims)

    def rename(self, src: str, dst: str) -> None:
        src_n, dst_n = _normalize(src), _normalize(dst)
        if src_n not in self._files:
            raise FileSystemError(f"no such file: {src_n}")
        if dst_n in self._files:
            raise FileSystemError(f"rename target exists: {dst_n}")
        self._files[dst_n] = self._files.pop(src_n)

    # -- internals -----------------------------------------------------------------

    def _blocks_of(self, path: str) -> List[bytes]:
        norm = _normalize(path)
        try:
            return self._files[norm]
        except KeyError:
            raise FileSystemError(f"no such file: {norm}") from None
