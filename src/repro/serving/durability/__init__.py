"""Durable serving state: write-ahead log + snapshot recovery.

The paper's batch pipeline inherits durability from the MapReduce
substrate (HDFS keeps the inputs; a failed job is re-run).  The serving
layer has no such substrate — a registered dataset lives in a
:class:`~repro.serving.store.SkylineStore`'s memory and dies with the
process.  This package closes that gap with the classic database recipe,
sized to the skyline workload:

* :mod:`repro.serving.durability.wal` — a per-dataset append-only
  **write-ahead log** of mutation records (length-prefixed JSON with a
  CRC and monotone sequence numbers, torn-tail tolerant);
* :mod:`repro.serving.durability.snapshot` — atomic **checkpoints** of
  the live membership + generation counter + id-allocation state, after
  which the delta log is truncated;
* :mod:`repro.serving.durability.manager` — the per-dataset
  :class:`DatasetLog` facade the store writes through, and the
  :class:`DurabilityManager` that owns the data directory;
* :mod:`repro.serving.durability.recovery` — replay snapshot + WAL tail
  back into a store so a restarted server answers **id-for-id
  identically** to the pre-crash one.

Recovery I/O is proportional to the live membership plus the mutation
tail since the last checkpoint — never the raw input — following the
communication-efficiency principle of *Computing Skylines on Distributed
Data*: persist candidates and deltas, not whole partitions.
"""

from repro.serving.durability.manager import (
    DatasetLog,
    DurabilityConfig,
    DurabilityManager,
)
from repro.serving.durability.recovery import (
    RecoveryReport,
    recover_dataset,
    recover_store,
)
from repro.serving.durability.snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)
from repro.serving.durability.wal import (
    FSYNC_POLICIES,
    WalRecord,
    WalScan,
    WriteAheadLog,
    read_wal,
)

__all__ = [
    "DatasetLog",
    "DurabilityConfig",
    "DurabilityManager",
    "FSYNC_POLICIES",
    "RecoveryReport",
    "SNAPSHOT_FORMAT",
    "SnapshotError",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "read_snapshot",
    "read_wal",
    "recover_dataset",
    "recover_store",
    "write_snapshot",
]
