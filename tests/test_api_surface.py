"""Public API surface checks: exports resolve and stay importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.partitioning",
    "repro.mapreduce",
    "repro.observability",
    "repro.services",
    "repro.data",
    "repro.bench",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), f"{package} lacks __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_sorted_and_unique(package):
    mod = importlib.import_module(package)
    names = list(mod.__all__)
    assert len(names) == len(set(names)), f"{package}.__all__ has duplicates"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_names():
    # The names the README quickstart uses must stay top-level.
    import repro

    for name in (
        "run_mr_skyline",
        "update_mr_skyline",
        "skyline",
        "generate_qws",
        "extend_dataset",
        "select_services",
        "ServiceRegistry",
        "IncrementalSkyline",
    ):
        assert hasattr(repro, name)


def test_module_docstrings_present():
    for package in PACKAGES + [
        "repro.core.bnl",
        "repro.core.bbs",
        "repro.core.mr_skyline",
        "repro.mapreduce.simulation",
        "repro.services.composition",
    ]:
        mod = importlib.import_module(package)
        assert mod.__doc__ and len(mod.__doc__) > 40, f"{package} under-documented"
