#!/usr/bin/env python
"""Web-service selection — the paper's motivating scenario (§I–§II).

A client wants the QoS-optimal services out of a large registry snapshot:
no service in the result may be beaten on *every* quality attribute by any
other.  We build the QWS-like synthetic workload, run skyline selection over
an increasing number of QoS attributes, and rank the survivors with a user
utility.

Run:  python examples/web_service_selection.py
"""

from repro.services import (
    QWS_SCHEMA,
    generate_qws,
    rank_by_utility,
    select_services,
)

def main() -> None:
    dataset = generate_qws(10_000, seed=42)
    print(f"registry snapshot: {len(dataset):,} services, "
          f"{dataset.num_attributes} QoS attributes "
          f"({', '.join(QWS_SCHEMA.names[:4])}, ...)\n")

    # The paper sweeps d = 2..10; more attributes -> larger skylines, since
    # every extra dimension gives services more ways to be incomparable.
    for dims in (2, 4, 6, 8, 10):
        selection = select_services(dataset, dims=dims, mode="mr-angle")
        print(f"d={dims:2d}: {len(selection):5d} skyline services "
              f"({100 * len(selection) / len(dataset):.2f} % of registry)")

    # Rank the d=6 skyline for a latency-sensitive user: response time and
    # latency dominate the utility; throughput matters a little.
    selection = select_services(dataset, dims=6, mode="mr-angle")
    weights = [0.4, 0.1, 0.1, 0.1, 0.1, 0.2]  # rt, av, tp, su, re, co
    ranked = rank_by_utility(dataset, selection, weights=weights)

    print("\ntop-5 services for a latency-sensitive user:")
    names = QWS_SCHEMA.names[:6]
    header = "  ".join(f"{n[:12]:>12}" for n in names)
    print(f"     {header}")
    for rank, idx in enumerate(ranked[:5], start=1):
        row = "  ".join(f"{v:12.1f}" for v in dataset.raw[idx, :6])
        print(f"  #{rank} {row}")

if __name__ == "__main__":
    main()
