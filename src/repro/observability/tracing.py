"""Zero-dependency structured tracer for the MapReduce skyline engine.

A :class:`Span` is one timed region — job → phase (map/shuffle/reduce) →
task → retry attempt — measured with the monotonic nanosecond clock
(:func:`time.perf_counter_ns`), so durations are immune to wall-clock
steps.  Spans nest through a :class:`Tracer` stack: ``tracer.span(...)``
is a context manager that opens a child of whatever span is currently
open, and finishing a span delivers it to every attached sink (a
JSON-lines exporter, in-memory capture buffers, or both).

Design constraints, in priority order:

1. **Disabled means free.**  The default tracer is disabled; its
   ``span()`` returns one shared no-op context manager, no clock is read,
   no object is allocated.  The engine keeps its hooks unconditionally —
   the <2 % overhead budget lives here.
2. **Failures still trace.**  Spans are exported as they *finish*, not at
   shutdown, so a job that dies mid-phase leaves a partial trace; the
   closing span of an exceptional region is marked ``status="error"``.
3. **Deterministic ids.**  Span/trace ids are per-tracer sequence numbers
   (no UUIDs, no PRNG) so two identical runs produce identical traces up
   to timing.

The serialized form is one JSON object per line; see
:func:`Span.to_dict` / :func:`read_trace` for the schema.
"""

from __future__ import annotations

import io
import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, TextIO

__all__ = [
    "Span",
    "Tracer",
    "JsonLinesExporter",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "read_trace",
    "now_ns",
]

#: Record-type tags used in trace files.
SPAN_RECORD = "span"
METRICS_RECORD = "metrics"


def now_ns() -> int:
    """The tracer's clock: monotonic nanoseconds (never steps backwards)."""
    return time.perf_counter_ns()


class Span:
    """One timed region of the pipeline.

    Attributes
    ----------
    name:
        Human-readable label, e.g. ``"mr-angle-partition"`` or ``"map-3"``.
    kind:
        Coarse category used by the summarizer: ``"job"``, ``"phase"``,
        ``"task"``, ``"bench"``, or free-form.
    trace_id / span_id / parent_id:
        Deterministic per-tracer sequence ids; ``parent_id`` is ``None``
        for root spans.
    start_ns / end_ns:
        Monotonic clock readings (:func:`now_ns`); ``end_ns`` is ``None``
        while the span is open.
    status:
        ``"ok"`` or ``"error"`` (the region raised).
    attrs:
        Arbitrary JSON-serializable key/value annotations.
    """

    __slots__ = (
        "name",
        "kind",
        "trace_id",
        "span_id",
        "parent_id",
        "start_ns",
        "end_ns",
        "status",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start_ns: int,
    ):
        self.name = name
        self.kind = kind
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: int | None = None
        self.status = "ok"
        self.attrs: Dict[str, Any] = {}

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def set_attrs(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-lines record for this span."""
        return {
            "type": SPAN_RECORD,
            "name": self.name,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_s": round(self.duration_s, 9),
            "status": self.status,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        span = cls(
            name=record["name"],
            kind=record["kind"],
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start_ns=int(record["start_ns"]),
        )
        if record.get("end_ns") is not None:
            span.end_ns = int(record["end_ns"])
        span.status = record.get("status", "ok")
        span.attrs = dict(record.get("attrs", {}))
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.kind}:{self.name}, {self.duration_s:.6f}s, "
            f"status={self.status})"
        )


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()
    name = kind = trace_id = span_id = ""
    parent_id = None
    start_ns = 0
    end_ns = 0
    status = "ok"
    duration_ns = 0
    duration_s = 0.0
    attrs: Dict[str, Any] = {}

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def set_attrs(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager; the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CM = _NullSpanContext()


class JsonLinesExporter:
    """Writes finished spans (and metrics snapshots) as JSON lines."""

    def __init__(self, target: str | TextIO):
        if isinstance(target, (str, bytes)):
            self._fh: TextIO = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False

    def export(self, span: Span) -> None:
        self._fh.write(json.dumps(span.to_dict(), default=str) + "\n")

    def write_metrics(self, snapshot: Dict[str, Any]) -> None:
        """Append a metrics-snapshot record to the trace stream."""
        record = {"type": METRICS_RECORD, "snapshot": snapshot}
        self._fh.write(json.dumps(record, default=str) + "\n")

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._fh.close()


class Tracer:
    """Produces nested spans and routes finished ones to sinks.

    Parameters
    ----------
    exporter:
        Optional :class:`JsonLinesExporter` (or anything with an
        ``export(span)`` method) receiving every finished span.
    enabled:
        A disabled tracer's ``span()`` / ``record_span()`` are no-ops.
    keep_spans:
        Retain every finished span in :attr:`finished` (tests, summaries).
    """

    def __init__(
        self,
        exporter: JsonLinesExporter | None = None,
        *,
        enabled: bool = True,
        keep_spans: bool = False,
    ):
        self.exporter = exporter
        self.enabled = enabled
        self.finished: List[Span] = []
        self._keep_spans = keep_spans
        self._stack: List[Span] = []
        self._captures: List[List[Span]] = []
        self._next_span = 1
        self._next_trace = 1

    # -- span lifecycle ---------------------------------------------------------

    def span(
        self,
        name: str,
        kind: str = "span",
        parent: Span | None = None,
        **attrs: Any,
    ):
        """Context manager opening a child of the currently-open span.

        ``parent`` overrides the stack-derived parent — used by the
        executor-based runner when the logical parent (a phase span) is not
        the innermost open span.
        """
        if not self.enabled:
            return _NULL_CM
        return self._live_span(name, kind, attrs, parent)

    @contextmanager
    def _live_span(
        self,
        name: str,
        kind: str,
        attrs: Dict[str, Any],
        parent: Span | None = None,
    ):
        span = self._open(name, kind, parent=parent)
        if attrs:
            span.attrs.update(attrs)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            self._close(span)

    def start_span(
        self,
        name: str,
        kind: str = "span",
        *,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span | _NullSpan:
        """Open a *detached* span: timed from now, but not on the stack.

        Detached spans are for concurrent regions — overlapping phases of a
        pipelined job chain — where LIFO context managers cannot express the
        true shape.  The caller holds the handle and must finish it with
        :meth:`end_span`.  Parentage comes from ``parent`` (or the innermost
        open stack span when omitted); child spans of concurrent regions
        must therefore pass their parent explicitly.
        """
        if not self.enabled:
            return _NULL_SPAN
        span = self._make(name, kind, parent=parent)
        if attrs:
            span.attrs.update(attrs)
        return span

    def end_span(self, span: Span | _NullSpan, status: str = "ok") -> None:
        """Finish a detached span from :meth:`start_span` and emit it."""
        if span is _NULL_SPAN or isinstance(span, _NullSpan):
            return
        span.end_ns = now_ns()
        span.status = status
        self._emit(span)

    def record_span(
        self,
        name: str,
        kind: str = "span",
        *,
        duration_ns: int = 0,
        status: str = "ok",
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span | _NullSpan:
        """Record an already-elapsed region as a finished span.

        Used for work measured elsewhere — e.g. a task that ran in a
        worker process or thread and only reported its duration back.  The
        span ends "now" and is back-dated by ``duration_ns``; it is
        parented under ``parent`` (or the currently open span) and tagged
        ``synthetic`` (its start may overlap siblings, since the real
        execution was concurrent).
        """
        if not self.enabled:
            return _NULL_SPAN
        end = now_ns()
        span = self._make(
            name, kind, parent=parent, start_ns=end - max(int(duration_ns), 0)
        )
        span.end_ns = end
        span.status = status
        span.attrs["synthetic"] = True
        if attrs:
            span.attrs.update(attrs)
        self._emit(span)
        return span

    def current_span(self) -> Span | None:
        """The innermost open span, or ``None`` outside any region."""
        return self._stack[-1] if self._stack else None

    # -- capture / flush --------------------------------------------------------

    @contextmanager
    def capture(self) -> Iterator[List[Span]]:
        """Collect every span finished inside the ``with`` block."""
        bucket: List[Span] = []
        self._captures.append(bucket)
        try:
            yield bucket
        finally:
            self._captures.remove(bucket)

    def flush(self) -> None:
        if self.exporter is not None:
            self.exporter.flush()

    # -- internals --------------------------------------------------------------

    def _make(
        self,
        name: str,
        kind: str,
        parent: Span | None = None,
        start_ns: int | None = None,
    ) -> Span:
        """Allocate a span (ids + parentage) without touching the stack."""
        if parent is None:
            parent = self._stack[-1] if self._stack else None
        if parent is None:
            trace_id = f"t{self._next_trace}"
            self._next_trace += 1
        else:
            trace_id = parent.trace_id
        span = Span(
            name=name,
            kind=kind,
            trace_id=trace_id,
            span_id=f"s{self._next_span}",
            parent_id=parent.span_id if parent else None,
            start_ns=start_ns if start_ns is not None else now_ns(),
        )
        self._next_span += 1
        return span

    def _open(
        self,
        name: str,
        kind: str,
        start_ns: int | None = None,
        parent: Span | None = None,
    ) -> Span:
        span = self._make(name, kind, parent=parent, start_ns=start_ns)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end_ns = now_ns()
        # Tolerate out-of-order closes (shouldn't happen, but never corrupt
        # the stack if user code leaks a context manager).
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self._emit(span)

    def _emit(self, span: Span) -> None:
        if self._keep_spans:
            self.finished.append(span)
        for bucket in self._captures:
            bucket.append(span)
        if self.exporter is not None:
            self.exporter.export(span)


#: The process-default disabled tracer: every hook in the engine calls
#: through it at near-zero cost until tracing is switched on.
NULL_TRACER = Tracer(enabled=False)

_default_tracer: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide tracer used by all engine hooks."""
    return _default_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install (or, with ``None``, reset) the process-wide tracer."""
    global _default_tracer
    _default_tracer = tracer if tracer is not None else NULL_TRACER
    return _default_tracer


def read_trace(source: str | TextIO) -> List[Dict[str, Any]]:
    """Parse a JSON-lines trace file into its raw records.

    Returns the full record list (span records and metrics snapshots).
    Raises ``ValueError`` on malformed lines or records missing the
    mandatory fields — the CLI relies on this to fail CI on bad traces.
    """
    if isinstance(source, (str, bytes)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_trace(fh)
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno} is not valid JSON: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(f"trace line {lineno} is missing a 'type' field")
        if record["type"] == SPAN_RECORD:
            missing = {"name", "kind", "span_id", "start_ns"} - record.keys()
            if missing:
                raise ValueError(
                    f"trace line {lineno} span record missing {sorted(missing)}"
                )
        records.append(record)
    return records


def spans_of(records: List[Dict[str, Any]]) -> List[Span]:
    """The :class:`Span` objects among raw trace records."""
    return [Span.from_dict(r) for r in records if r.get("type") == SPAN_RECORD]


def metrics_of(records: List[Dict[str, Any]]) -> Dict[str, Any] | None:
    """The last metrics snapshot in a trace, if any."""
    snapshot = None
    for record in records:
        if record.get("type") == METRICS_RECORD:
            snapshot = record.get("snapshot")
    return snapshot


def dumps_spans(spans: List[Span]) -> str:
    """Serialize spans to a JSON-lines string (round-trip helper)."""
    out = io.StringIO()
    for span in spans:
        out.write(json.dumps(span.to_dict(), default=str) + "\n")
    return out.getvalue()
