"""Slot scheduling: assigning tasks to a fixed pool of execution slots.

This is the heart of the cluster timing model.  Hadoop 0.20 ran each task in
a slot (a fixed number per TaskTracker node); a phase's duration is the
*makespan* of its tasks over the available slots.  We implement the greedy
list-scheduling policies Hadoop effectively used:

* ``fifo`` — tasks start in submission order (Hadoop's default queue), and
* ``lpt``  — longest-processing-time-first, the classic 4/3-approximation,
  useful as a best-case bound in ablations.

The scheduler is deterministic: ties break on slot index, then task index.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Literal, Sequence

Policy = Literal["fifo", "lpt"]


@dataclass(slots=True)
class ScheduledTask:
    """Placement of one task on the simulated cluster."""

    task_index: int
    slot: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(slots=True)
class Schedule:
    """A full phase schedule."""

    num_slots: int
    tasks: List[ScheduledTask] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        return max((t.end_s for t in self.tasks), default=0.0)

    @property
    def busy_s(self) -> float:
        return sum(t.duration_s for t in self.tasks)

    @property
    def utilisation(self) -> float:
        """Fraction of slot-time doing work; 1.0 means perfectly packed."""
        span = self.makespan_s
        if span <= 0.0:
            return 1.0
        return self.busy_s / (span * self.num_slots)

    def slot_timeline(self, slot: int) -> List[ScheduledTask]:
        return sorted(
            (t for t in self.tasks if t.slot == slot), key=lambda t: t.start_s
        )

    def observe(self, registry, prefix: str) -> None:
        """Record this schedule's shape as gauges under ``prefix.``.

        ``makespan_s`` / ``busy_s`` / ``utilisation`` plus ``tasks`` and
        ``slots`` — enough to diagnose a wave's packing quality (a low
        utilisation with a long makespan means one straggling task holds
        the phase, the paper's core load-balance argument).
        """
        registry.gauge(f"{prefix}.makespan_s").set(self.makespan_s)
        registry.gauge(f"{prefix}.busy_s").set(self.busy_s)
        registry.gauge(f"{prefix}.utilisation").set(self.utilisation)
        registry.gauge(f"{prefix}.tasks").set(len(self.tasks))
        registry.gauge(f"{prefix}.slots").set(self.num_slots)


def schedule_tasks(
    durations: Sequence[float],
    num_slots: int,
    *,
    policy: Policy = "fifo",
    per_task_overhead_s: float = 0.0,
    release_times_s: Sequence[float] | None = None,
) -> Schedule:
    """Greedy list scheduling of ``durations`` onto ``num_slots`` slots.

    Each task occupies its slot for ``duration + per_task_overhead_s`` (the
    overhead models task launch — Hadoop's JVM spin-up).  Returns the full
    placement, from which callers read the makespan.

    ``release_times_s`` gives each task an earliest-start time: a task
    cannot begin before its release even if a slot is idle.  This models
    pipelined chains, where job *k+1*'s map task *i* is released the moment
    job *k*'s reduce partition *i* finishes rather than at the phase
    barrier.  Omitted (or all-zero), every task is available at time 0 and
    the classic barrier semantics hold.
    """
    if num_slots <= 0:
        raise ValueError(f"num_slots must be >= 1, got {num_slots}")
    for i, d in enumerate(durations):
        if d < 0:
            raise ValueError(f"task {i} has negative duration {d}")
    if per_task_overhead_s < 0:
        raise ValueError(f"per_task_overhead_s must be >= 0, got {per_task_overhead_s}")
    if release_times_s is not None:
        if len(release_times_s) != len(durations):
            raise ValueError(
                f"release_times_s has {len(release_times_s)} entries "
                f"for {len(durations)} tasks"
            )
        for i, r in enumerate(release_times_s):
            if r < 0:
                raise ValueError(f"task {i} has negative release time {r}")

    order = list(range(len(durations)))
    if policy == "lpt":
        order.sort(key=lambda i: (-durations[i], i))
    elif policy != "fifo":
        raise ValueError(f"unknown policy {policy!r}")

    # Min-heap of (free_time, slot_index).
    slots = [(0.0, s) for s in range(num_slots)]
    heapq.heapify(slots)
    schedule = Schedule(num_slots=num_slots)
    for task_index in order:
        free_at, slot = heapq.heappop(slots)
        start = free_at
        if release_times_s is not None:
            start = max(start, release_times_s[task_index])
        end = start + durations[task_index] + per_task_overhead_s
        schedule.tasks.append(
            ScheduledTask(task_index=task_index, slot=slot, start_s=start, end_s=end)
        )
        heapq.heappush(slots, (end, slot))
    schedule.tasks.sort(key=lambda t: t.task_index)
    return schedule
