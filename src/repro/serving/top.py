"""``repro top`` — a refreshing terminal dashboard for a serving process.

The poller attaches to a running ``repro serve --tcp`` server, issues the
four read-only telemetry verbs (``stats``, ``health``, ``slo``,
``events``) each tick, and renders one frame: QPS and per-counter rates
(computed client-side with
:func:`repro.observability.export.snapshot_delta`), admission state,
cache hit ratio, serve-latency quantiles, per-dataset generation/size,
partition-skew gauges, SLO burn status, and the newest structured events.

Rendering is a pure function (:func:`render_frame`) over the decoded
responses — the tests drive it with canned samples and the live loop
(:func:`run_top`) stays a thin transport shell.  ``--once`` prints a
single frame and exits (the CI smoke path); the interactive loop
repaints with ANSI clear-home until interrupted or ``--count`` frames
have been shown.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.observability.export import snapshot_delta
from repro.serving.client import ServingClient, ServingConnectionError

__all__ = ["Sample", "collect_sample", "render_frame", "run_top"]

#: ANSI clear screen + cursor home (the repaint between live frames).
_CLEAR = "\x1b[2J\x1b[H"

_STATUS_TAGS = {"healthy": "OK", "degraded": "WARN", "unhealthy": "PAGE"}


class Sample:
    """One poll of the telemetry plane, timestamped for rate math."""

    __slots__ = ("stats", "health", "slo", "events", "polled_at")

    def __init__(
        self,
        stats: Dict[str, Any],
        health: Dict[str, Any],
        slo: Dict[str, Any],
        events: List[Dict[str, Any]],
        polled_at: float,
    ):
        self.stats = stats
        self.health = health
        self.slo = slo
        self.events = events
        self.polled_at = polled_at


def collect_sample(client: ServingClient, *, event_tail: int = 8) -> Sample:
    """Issue the four telemetry verbs and bundle the responses."""
    return Sample(
        stats=client.stats(),
        health=client.health(),
        slo=client.slo(),
        events=client.events(event_tail).get("events", []),
        polled_at=time.monotonic(),
    )


def _rate(delta: float, dt: float) -> str:
    return f"{delta / dt:.1f}/s" if dt > 0 else "-"


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole > 0 else "-"


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms"


def _counter_deltas(sample: Sample, previous: Sample | None) -> Dict[str, Any]:
    current = {"counters": sample.stats.get("counters", {}), "histograms": {}}
    prior = (
        {"counters": previous.stats.get("counters", {}), "histograms": {}}
        if previous is not None
        else None
    )
    return snapshot_delta(prior, current)["counters"]


def render_frame(
    sample: Sample,
    previous: Sample | None = None,
    *,
    target: str = "",
    interval_s: float | None = None,
) -> str:
    """One dashboard frame as plain text (no escape codes)."""
    stats, health, slo = sample.stats, sample.health, sample.slo
    counters = stats.get("counters", {})
    deltas = _counter_deltas(sample, previous)
    dt = (
        sample.polled_at - previous.polled_at
        if previous is not None
        else 0.0
    )
    status = str(health.get("status", "unknown"))
    tag = _STATUS_TAGS.get(status, status.upper())
    lines: List[str] = []
    head = f"repro top — {target or 'server'}   [{tag}]"
    head += f"   up {float(stats.get('uptime_s', 0.0)):.0f}s"
    kernel = stats.get("kernel")
    if kernel:
        head += f"   kernel {kernel}"
    if interval_s:
        head += f"   every {interval_s:g}s"
    lines.append(head)

    cluster_frame = bool(stats.get("shards"))
    if cluster_frame:
        # Coordinator stats spell their counters serve.cluster.*.
        requests = counters.get("serve.cluster.requests", 0)
        line = f"requests {requests}"
        if previous is not None:
            line += f" ({_rate(deltas.get('serve.cluster.requests', 0), dt)})"
        line += (
            f"   degraded {counters.get('serve.cluster.degraded', 0)}"
            f"   shard-lost {counters.get('serve.shard.lost', 0)}"
            f"   mutations {counters.get('serve.cluster.mutations', 0)}"
        )
    else:
        requests = counters.get("serve.requests", 0)
        line = f"requests {requests}"
        if previous is not None:
            line += f" ({_rate(deltas.get('serve.requests', 0), dt)})"
        line += (
            f"   computes {counters.get('serve.computes', 0)}"
            f"   coalesced {counters.get('serve.coalesced', 0)}"
            f"   shed {counters.get('serve.shed', 0)}"
            f"   degraded {counters.get('serve.degraded', 0)}"
            f"   mutations {counters.get('serve.mutations', 0)}"
        )
    lines.append(line)

    cache = stats.get("cache", {})
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    lines.append(
        f"cache {_pct(hits, hits + misses)} hit"
        f" ({hits} hits / {misses} misses,"
        f" {cache.get('entries', 0)} entries,"
        f" {cache.get('evictions', 0)} evictions)"
        f"   inflight {stats.get('inflight_computes', 0)}"
        f"   queued {stats.get('queued', 0)}"
    )
    pruned = sum(
        v for k, v in counters.items() if k.startswith("prune.points_pruned.")
    )
    if pruned:
        tests = sum(
            v for k, v in counters.items() if k.startswith("prune.filter_tests.")
        )
        lines.append(f"pruned {pruned} points map-side ({tests} filter tests)")

    latency = stats.get("latency", {})
    if latency.get("count"):
        lines.append(
            f"latency p50 {_ms(latency.get('p50', 0.0))}"
            f"  p90 {_ms(latency.get('p90', 0.0))}"
            f"  p99 {_ms(latency.get('p99', 0.0))}"
            f"  max {_ms(latency.get('max', 0.0))}"
            f"  (n={latency['count']})"
        )
    else:
        lines.append("latency (no samples yet)")

    lines.append("slo:")
    for objective in slo.get("objectives", []):
        windows = objective.get("windows", {})
        burns = "  ".join(
            f"{name} {w.get('burn_rate', 0.0):.2f}x"
            for name, w in windows.items()
        )
        state = str(objective.get("state", "ok")).upper()
        target_pct = 100.0 * float(objective.get("target", 0.0))
        lines.append(
            f"  {objective.get('name', '?'):<14} target {target_pct:.2f}%"
            f"   burn {burns}   [{state}]"
        )
    if not slo.get("objectives"):
        lines.append("  (no objectives configured)")

    shards = stats.get("shards", {})
    if shards:
        # Coordinator frame (`repro serve --cluster` / `repro coordinator`):
        # one row per shard endpoint, plus the cluster-level fan-out counters.
        lines.append("shards:")
        lines.append(
            f"  {'shard':<8} {'address':<22} {'state':<6} {'datasets':>8} "
            f"{'lost':>6}"
        )
        for name in sorted(shards):
            info = shards[name]
            lines.append(
                f"  {name:<8} {str(info.get('address', '?')):<22} "
                f"{str(info.get('state', '?')):<6} "
                f"{info.get('datasets', 0):>8} {info.get('lost', 0):>6}"
            )
        held = counters.get("serve.cluster.points_held", 0)
        sent = counters.get("serve.cluster.candidates_received", 0)
        pruned_wire = counters.get("serve.cluster.filter_pruned", 0)
        if held:
            lines.append(
                f"  wire: {sent}/{held} candidates crossed"
                f" ({_pct(pruned_wire, held)} filter-pruned,"
                f" {counters.get('serve.cluster.unfiltered_retries', 0)}"
                " unfiltered retries)"
            )

    datasets = stats.get("datasets", {})
    gauges = stats.get("gauges", {})
    lines.append("datasets:")
    if datasets:
        lines.append(
            f"  {'name':<16} {'size':>8} {'gen':>6} {'skew(max/min)':>14} "
            f"{'imbalance':>10}"
        )
        for name in sorted(datasets):
            info = datasets[name]
            skew = gauges.get(f"partition.skew.{name}.max_min_ratio")
            imbalance = gauges.get(f"partition.skew.{name}.imbalance")
            lines.append(
                f"  {name:<16} {info.get('size', 0):>8} "
                f"{info.get('generation', 0):>6} "
                f"{f'{skew:.2f}' if skew is not None else '-':>14} "
                f"{f'{imbalance:.2f}' if imbalance is not None else '-':>10}"
            )
    else:
        lines.append("  (none registered)")

    if sample.events:
        lines.append(f"events (last {len(sample.events)}):")
        for event in sample.events:
            attrs = "  ".join(
                f"{k}={v}"
                for k, v in event.items()
                if k not in ("seq", "ts", "kind")
            )
            lines.append(f"  #{event.get('seq', '?')} {event.get('kind', '?')}  {attrs}")
    else:
        lines.append("events: (none)")
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    *,
    interval_s: float = 2.0,
    once: bool = False,
    count: int | None = None,
    event_tail: int = 8,
    out: Any = None,
) -> int:
    """Poll a serving TCP endpoint and render frames until stopped."""
    import sys

    out = out if out is not None else sys.stdout
    try:
        client = ServingClient.connect(host, port, timeout=10.0)
    except OSError as exc:
        print(f"top: cannot connect to {host}:{port}: {exc}", file=sys.stderr)
        return 1
    previous: Sample | None = None
    frames = 0
    try:
        with client:
            while True:
                sample = collect_sample(client, event_tail=event_tail)
                frame = render_frame(
                    sample,
                    previous,
                    target=f"{host}:{port}",
                    interval_s=None if once else interval_s,
                )
                if once or count is not None:
                    out.write(frame + "\n")
                else:
                    out.write(_CLEAR + frame + "\n")
                out.flush()
                frames += 1
                previous = sample
                if once or (count is not None and frames >= count):
                    return 0
                time.sleep(interval_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0
    except ServingConnectionError as exc:
        print(f"top: server went away: {exc}", file=sys.stderr)
        return 1
