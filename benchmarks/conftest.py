"""Shared fixtures for the benchmark suite.

Default parameters are scaled down so ``pytest benchmarks/ --benchmark-only``
finishes in minutes on a laptop; set ``REPRO_PAPER_SCALE=1`` to run every
benchmark at the paper's full cardinalities (N = 1,000 / 100,000, d = 2…10,
servers 4…32) — the configuration used to fill EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.bench.harness import DEFAULT_CLUSTER, DatasetCache
from repro.mapreduce.cluster import ClusterSpec


@dataclass(frozen=True)
class BenchScale:
    """Benchmark-suite scale parameters."""

    paper: bool
    small_n: int
    large_n: int
    dims: tuple[int, ...]
    node_counts: tuple[int, ...]
    cluster: ClusterSpec
    mc_samples: int


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    paper = os.environ.get("REPRO_PAPER_SCALE", "") == "1"
    if paper:
        return BenchScale(
            paper=True,
            small_n=1_000,
            large_n=100_000,
            dims=(2, 4, 6, 8, 10),
            node_counts=(4, 8, 12, 16, 20, 24, 28, 32),
            cluster=DEFAULT_CLUSTER,
            mc_samples=200_000,
        )
    return BenchScale(
        paper=False,
        small_n=1_000,
        large_n=20_000,
        dims=(2, 6, 10),
        node_counts=(4, 16, 32),
        cluster=DEFAULT_CLUSTER,
        mc_samples=50_000,
    )


@pytest.fixture(scope="session")
def cache() -> DatasetCache:
    return DatasetCache()
