"""Differential suite: the cluster must equal a single-node service.

One :class:`LocalCluster` of three real TCP shard servers behind a
:class:`ClusterCoordinator`, versus one in-process
:class:`SkylineService` over the same mutation history.  Because the
coordinator replicates the single-node id discipline (arrival order,
never reused), every query kind must return *identical raw id lists* —
not just equal sets — for every shard function and both dominance
kernels.
"""

import numpy as np
import pytest

from repro.serving.cluster import (
    SHARD_FUNCTIONS,
    ClusterConfig,
    ClusterCoordinator,
    LocalCluster,
)
from repro.serving.queries import QuerySpec
from repro.serving.service import SkylineService

SHARDS = 3


def _points(n=120, d=3, seed=3):
    return np.random.default_rng(seed).random((n, d)) + 0.01


def _specs(d):
    return [
        QuerySpec(dataset="diff", kind="skyline"),
        QuerySpec(dataset="diff", kind="skyband", k=2),
        QuerySpec(
            dataset="diff",
            kind="constrained",
            lower=(0.0,) * d,
            upper=(0.7,) * d,
        ),
        QuerySpec(dataset="diff", kind="subspace", dims=(0, d - 1)),
    ]


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(SHARDS) as fleet:
        yield fleet


def _assert_parity(coordinator, single, specs):
    for spec in specs:
        expected = single.query(spec)
        actual = coordinator.query(spec)
        assert actual.status in ("ok",), (spec.kind, actual.status)
        assert not actual.degraded, spec.kind
        assert actual.ids == list(expected.ids), (
            f"{spec.kind}: cluster {actual.ids} != single {list(expected.ids)}"
        )


@pytest.mark.parametrize("kernel", ["scalar", "block"])
@pytest.mark.parametrize("shard_fn", list(SHARD_FUNCTIONS))
def test_all_kinds_match_single_node(cluster, shard_fn, kernel):
    points = _points()
    d = points.shape[1]
    single = SkylineService()
    single.register("diff", points)
    with ClusterCoordinator(
        cluster.addresses(), config=ClusterConfig(kernel=kernel)
    ) as coordinator:
        dataset = f"diff-{shard_fn}-{kernel}"
        # Same dataset name on both sides keeps the specs shared.
        gvec = coordinator.register("diff", points, shard_fn=shard_fn)
        assert len(gvec) == SHARDS
        _assert_parity(coordinator, single, _specs(d))

        # Mutations: inserts and removes must keep exact id parity.
        rng = np.random.default_rng(hash(dataset) % 2**32)
        for step in range(6):
            row = rng.random(d) * (0.2 if step % 2 else 1.0) + 0.001
            gid, gvec_after = coordinator.insert("diff", row)
            sid, _ = single.insert("diff", row)
            assert gid == sid, "global ids must track single-node ids"
            assert sum(gvec_after) > sum(gvec), "writes must advance the vector"
            gvec = gvec_after
        removed = coordinator.query(QuerySpec(dataset="diff")).ids[0]
        coordinator.remove("diff", removed)
        single.remove("diff", removed)
        _assert_parity(coordinator, single, _specs(d))


def test_single_shard_placement_matches(cluster):
    points = _points(60, 2, seed=9)
    single = SkylineService()
    single.register("diff", points)
    with ClusterCoordinator(cluster.addresses()) as coordinator:
        coordinator.register("diff", points)  # no shard_fn: one shard
        _assert_parity(coordinator, single, _specs(2))


def test_cache_hits_at_stable_generation_vector(cluster):
    with ClusterCoordinator(cluster.addresses()) as coordinator:
        coordinator.register("diff", _points(80, 3), shard_fn="angle")
        spec = QuerySpec(dataset="diff")
        cold = coordinator.query(spec)
        warm = coordinator.query(spec)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.ids == cold.ids
        assert warm.generations == cold.generations

        coordinator.insert("diff", [0.001, 0.001, 0.001])
        invalidated = coordinator.query(spec)
        assert not invalidated.cache_hit, "a write must invalidate the key"


def test_candidates_cross_the_wire_pruned(cluster):
    """Communication efficiency: shards send fewer rows than they hold."""
    from repro.observability.metrics import get_metrics

    with ClusterCoordinator(cluster.addresses()) as coordinator:
        coordinator.register("diff", _points(300, 3, seed=1), shard_fn="angle")
        coordinator.query(QuerySpec(dataset="diff"))  # seeds the filters
        coordinator.query(QuerySpec(dataset="diff", kind="skyband", k=2))
        counters = get_metrics().snapshot()["counters"]
        held = counters["serve.cluster.points_held"]
        sent = counters["serve.cluster.candidates_received"]
        assert held >= 600, counters  # both queries scanned every shard
        assert sent < held, "filter broadcast must prune the wire"
        assert counters["serve.cluster.filter_pruned"] > 0
