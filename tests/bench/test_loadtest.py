"""The open-loop load generator: determinism, validation, live runs.

``run_scenario`` (spawn → load → SIGKILL → recover → parity) is already
driven end-to-end by ``repro loadtest`` and the bench's v4 ``loadtest``
section; the tests here pin the generator's contracts — deterministic
per-index requests, honest percentiles, validated knobs — plus one small
live ``run_loadtest`` against an in-process server.
"""

import threading

import pytest

from repro.bench.loadtest import (
    DEFAULT_MIX,
    LoadTestConfig,
    _build_request,
    percentile_ms,
    run_loadtest,
)
from repro.serving.server import make_tcp_server
from repro.serving.service import SkylineService

from tests.serving.harness import wait_for_port


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"qps": 0},
            {"duration_s": 0},
            {"workers": 0},
            {"mutation_fraction": 1.0},
            {"mutation_fraction": -0.1},
            {"n_points": 0},
            {"dims": 1},
            {"mix": {"skyline": 0.5, "nope": 0.5}},
            {"mix": {}},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LoadTestConfig(**kwargs).validate()

    def test_defaults_validate(self):
        LoadTestConfig().validate()

    def test_points_are_seed_deterministic(self):
        a = LoadTestConfig(seed=3).points()
        b = LoadTestConfig(seed=3).points()
        assert (a == b).all()
        assert not (a == LoadTestConfig(seed=4).points()).all()


class TestBuildRequest:
    def test_per_index_determinism(self):
        config = LoadTestConfig(seed=7)
        for i in range(50):
            assert _build_request(i, config) == _build_request(i, config)

    def test_mix_covers_every_kind_and_mutations(self):
        config = LoadTestConfig(seed=0, mutation_fraction=0.2)
        ops = [_build_request(i, config) for i in range(400)]
        kinds = {r["kind"] for r in ops if r["op"] == "query"}
        assert kinds == set(DEFAULT_MIX), kinds
        assert any(r["op"] == "insert" for r in ops)
        assert any(r["op"] == "remove" for r in ops)

    def test_requests_are_well_formed(self):
        config = LoadTestConfig(seed=1, dims=4)
        for i in range(200):
            request = _build_request(i, config)
            if request["op"] == "insert":
                assert len(request["point"]) == 4
            elif request["op"] == "remove":
                assert 0 <= request["id"] < config.n_points
            elif request["kind"] == "skyband":
                assert request["k"] >= 1
            elif request["kind"] == "constrained":
                assert all(
                    lo < hi
                    for lo, hi in zip(request["lower"], request["upper"])
                )
            elif request["kind"] == "subspace":
                dims = request["dims"]
                assert dims == sorted(set(dims)) and len(dims) >= 2

    def test_zero_mutation_fraction_is_all_queries(self):
        config = LoadTestConfig(seed=2, mutation_fraction=0.0)
        assert all(
            _build_request(i, config)["op"] == "query" for i in range(200)
        )


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile_ms([], 99) == 0.0

    def test_known_values(self):
        lat = [0.001, 0.002, 0.003, 0.004, 0.005]
        assert percentile_ms(lat, 50) == pytest.approx(3.0)
        assert percentile_ms(lat, 100) == pytest.approx(5.0)


class TestLiveRun:
    def test_open_loop_accounting_balances(self):
        config = LoadTestConfig(
            qps=150, duration_s=0.4, workers=4, n_points=120, seed=5
        )
        service = SkylineService()
        service.register("loadtest", points=config.points())
        server = make_tcp_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        wait_for_port(str(host), int(port))
        try:
            stats = run_loadtest(str(host), int(port), config)
        finally:
            server.stop()
            server.server_close()
            thread.join(timeout=10)

        requests = stats["requests"]
        total = int(config.qps * config.duration_s)
        assert requests["sent"] == total
        assert (
            requests["answered"] + requests["shed"] + requests["errors"]
            == total
        )
        assert requests["errors"] == 0, requests
        assert sum(requests["by_kind"].values()) + requests["mutations"] == total
        assert stats["achieved_qps"] > 0
        assert stats["latency_ms"]["p50"] <= stats["latency_ms"]["p99"]
        assert stats["latency_ms"]["p99"] > 0
