"""Chaos leg: shard crash / hang / slow must degrade, never corrupt.

Two failure injectors, the same assertions:

* :meth:`LocalCluster.kill` — a real crash: the accept loop stops and the
  established connections are severed mid-stream;
* a PR-4 :class:`~repro.mapreduce.faults.FaultPlan` wired through
  ``ClusterConfig.fault_plan`` — deterministic crash / cooperative-hang /
  slow decisions per fan-out leg.

Invariants under loss:

* a query with surviving shards answers ``degraded`` (never raises), its
  ids bracketed by soundness: every true global-answer point on a
  surviving shard is present, and nothing beyond the survivors-only
  answer appears;
* generation vectors never regress;
* every loss shows up in ``serve.shard.lost`` (counter and event);
* with every shard gone: a stale cached answer if one exists, else
  :class:`ClusterUnavailableError` — still not a hang.
"""

import numpy as np
import pytest

from repro.mapreduce.faults import FaultPlan, FaultRule
from repro.observability.metrics import get_metrics
from repro.serving.cluster import (
    ClusterConfig,
    ClusterCoordinator,
    ClusterUnavailableError,
    LocalCluster,
)
from repro.serving.queries import QuerySpec, evaluate

SHARDS = 3


def _points(n=90, d=3, seed=5):
    return np.random.default_rng(seed).random((n, d)) + 0.01


def _assert_degraded_bracket(coordinator, dataset, rows, spec, dead, answer):
    """The degraded-answer soundness bracket.

    The coordinator broadcasts filter points computed over the *full*
    dataset, so surviving shards may legitimately prune rows that only a
    dead shard's row dominates.  The guarantees are therefore:

    * **complete over survivors**: every true global-answer point that
      lives on a surviving shard is in the degraded answer;
    * **sound over survivors**: nothing outside the survivors-only
      answer (as if the dead shard's rows never existed) sneaks in.
    """
    all_ids = np.arange(rows.shape[0], dtype=np.intp)
    true_answer = set(evaluate(spec, all_ids, rows))
    survivors = [
        i for i in range(rows.shape[0])
        if coordinator.shard_of(dataset, i) not in dead
    ]
    ids = np.array(survivors, dtype=np.intp)
    survivors_only = set(evaluate(spec, ids, rows[ids]))
    got = set(answer)
    assert true_answer & set(survivors) <= got, (
        "degraded answer lost surviving true-answer points: "
        f"{sorted(true_answer & set(survivors) - got)}"
    )
    assert got <= survivors_only, (
        f"degraded answer invented points: {sorted(got - survivors_only)}"
    )
    assert got, "degraded answer must not be empty here"


class TestKilledShard:
    def test_degraded_answer_is_sound_over_survivors(self):
        rows = _points()
        with LocalCluster(SHARDS) as fleet:
            coordinator = ClusterCoordinator(
                fleet.addresses(),
                config=ClusterConfig(shard_timeout_s=2.0),
            )
            with coordinator:
                coordinator.register("chaos", rows, shard_fn="angle")
                full = coordinator.query(QuerySpec(dataset="chaos"))
                assert not full.degraded

                fleet.kill(1)
                # An uncached shape: the gvec is unchanged, so the cached
                # skyline would (correctly!) still be served fresh.
                spec = QuerySpec(dataset="chaos", kind="skyband", k=2)
                hurt = coordinator.query(spec)
                assert hurt.degraded and hurt.status == "degraded"
                assert hurt.missing_shards == [1]
                _assert_degraded_bracket(
                    coordinator, "chaos", rows, spec, {1}, hurt.ids
                )
                # Monotone generations, even hearing from fewer shards.
                assert all(
                    new >= old
                    for new, old in zip(hurt.generations, full.generations)
                )

                counters = get_metrics().snapshot()["counters"]
                assert counters["serve.shard.lost"] >= 1
                lost_events = [
                    e for e in coordinator.events_tail(50)
                    if e["kind"] == "serve.shard.lost"
                ]
                assert any(e["shard"] == 1 for e in lost_events)

    def test_unchanged_gvec_still_hits_cache_after_kill(self):
        # Shard loss does not invalidate: at an unchanged generation
        # vector the cached full answer is still the right answer.
        with LocalCluster(SHARDS) as fleet:
            with ClusterCoordinator(fleet.addresses()) as coordinator:
                coordinator.register("chaos", _points(), shard_fn="hash")
                spec = QuerySpec(dataset="chaos")
                full = coordinator.query(spec)
                fleet.kill(0)
                cached = coordinator.query(spec)
                assert cached.cache_hit and not cached.degraded
                assert cached.ids == full.ids

    def test_all_shards_lost_serves_stale_else_raises(self):
        with LocalCluster(SHARDS) as fleet:
            with ClusterCoordinator(fleet.addresses()) as coordinator:
                coordinator.register("chaos", _points(), shard_fn="grid")
                spec = QuerySpec(dataset="chaos")
                full = coordinator.query(spec)
                fleet.close()  # every shard gone

                # The skyline at the old gvec is cached: served stale.
                stale = coordinator.query(
                    QuerySpec(dataset="chaos"), deadline_s=5.0
                )
                assert stale.cache_hit or stale.degraded
                assert stale.ids == full.ids

                # Never cached: nothing to fall back to.
                with pytest.raises(ClusterUnavailableError):
                    coordinator.query(
                        QuerySpec(dataset="chaos", kind="skyband", k=2),
                        deadline_s=5.0,
                    )

    def test_writes_to_a_dead_shard_surface_as_errors(self):
        # Writes have no replica to degrade to: they must raise, not
        # silently drop the mutation.
        rows = _points()
        with LocalCluster(SHARDS) as fleet:
            with ClusterCoordinator(fleet.addresses()) as coordinator:
                coordinator.register("chaos", rows, shard_fn="angle")
                victim = next(
                    i for i in range(rows.shape[0])
                    if coordinator.shard_of("chaos", i) == 2
                )
                fleet.kill(2)
                with pytest.raises(Exception):
                    coordinator.remove("chaos", victim)


class TestInjectedFaults:
    def _coordinator(self, fleet, *rules, timeout_s=0.5):
        return ClusterCoordinator(
            fleet.addresses(),
            config=ClusterConfig(
                shard_timeout_s=timeout_s,
                fault_plan=FaultPlan(seed=11, rules=tuple(rules)),
            ),
        )

    @pytest.mark.parametrize(
        "rule",
        [
            FaultRule(fault="crash", kind="map", index=0, times=1),
            FaultRule(
                fault="hang", kind="map", index=0, times=1,
                hang_s=30.0, cooperative=True,
            ),
        ],
        ids=["crash", "hang"],
    )
    def test_injected_loss_degrades_then_recovers(self, rule):
        rows = _points()
        with LocalCluster(SHARDS) as fleet:
            with self._coordinator(fleet, rule) as coordinator:
                coordinator.register("chaos", rows, shard_fn="angle")
                spec = QuerySpec(dataset="chaos")
                hurt = coordinator.query(spec)
                assert hurt.degraded and hurt.missing_shards == [0]
                _assert_degraded_bracket(
                    coordinator, "chaos", rows, spec, {0}, hurt.ids
                )
                # times=1: the rule is exhausted, full answers return
                # (degraded results are never cached, so no staleness).
                healed = coordinator.query(spec)
                assert not healed.degraded and not healed.cache_hit
                assert healed.missing_shards == []

    def test_slow_shard_inside_budget_is_not_lost(self):
        rule = FaultRule(
            fault="slow", kind="map", index=1, times=1, slow_s=0.05
        )
        with LocalCluster(SHARDS) as fleet:
            with self._coordinator(fleet, rule, timeout_s=5.0) as coordinator:
                coordinator.register("chaos", _points(), shard_fn="angle")
                response = coordinator.query(QuerySpec(dataset="chaos"))
                assert not response.degraded
