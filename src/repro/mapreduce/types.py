"""Core value types shared across the MapReduce engine.

The engine moves ``(key, value)`` pairs.  Keys must be hashable and totally
orderable within one job (the shuffle sorts by key); values are arbitrary
Python objects.  :class:`TaskStats` is the engine's timing record — one per
executed task — and is the raw material for the cluster timing simulation
(:mod:`repro.mapreduce.simulation`) that reproduces the paper's Figure 6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Hashable, NamedTuple


class KeyValue(NamedTuple):
    """A single key/value record flowing through the engine."""

    key: Hashable
    value: Any


class TaskKind(enum.Enum):
    """Which pipeline stage a task belongs to."""

    MAP = "map"
    REDUCE = "reduce"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class TaskStats:
    """Timing and volume accounting for one executed task.

    Attributes
    ----------
    task_id:
        Engine-assigned id, e.g. ``"map-7"``.
    kind:
        :class:`TaskKind.MAP` or :class:`TaskKind.REDUCE`.
    duration_s:
        Wall-clock seconds spent inside the task body (user code + framework
        record handling, excluding inter-process transfer).
    records_in / records_out:
        Record counts crossing the task boundary.
    bytes_out:
        Estimated serialized size of the task output; drives the shuffle
        cost model in the simulator.
    partition:
        For reduce tasks, the reduce-partition index; ``-1`` for map tasks.
    """

    task_id: str
    kind: TaskKind
    duration_s: float = 0.0
    records_in: int = 0
    records_out: int = 0
    bytes_out: int = 0
    partition: int = -1
    attempt: int = 1

    def merged_with(self, other: "TaskStats") -> "TaskStats":
        """Combine two attempts/stat fragments of the same logical task."""
        if other.task_id != self.task_id:
            raise ValueError(
                f"cannot merge stats of {self.task_id} with {other.task_id}"
            )
        return TaskStats(
            task_id=self.task_id,
            kind=self.kind,
            duration_s=self.duration_s + other.duration_s,
            records_in=self.records_in + other.records_in,
            records_out=self.records_out + other.records_out,
            bytes_out=self.bytes_out + other.bytes_out,
            partition=self.partition,
            attempt=max(self.attempt, other.attempt),
        )


@dataclass(slots=True)
class PhaseStats:
    """Aggregated statistics for one phase (all map tasks or all reduce tasks).

    ``busy_s`` is the *sum* of task durations (total work); ``critical_s`` is
    the longest single task (a lower bound on the phase's parallel makespan
    with unlimited slots).
    """

    kind: TaskKind
    tasks: list[TaskStats] = field(default_factory=list)

    @property
    def busy_s(self) -> float:
        return sum(t.duration_s for t in self.tasks)

    @property
    def critical_s(self) -> float:
        return max((t.duration_s for t in self.tasks), default=0.0)

    @property
    def records_in(self) -> int:
        return sum(t.records_in for t in self.tasks)

    @property
    def records_out(self) -> int:
        return sum(t.records_out for t in self.tasks)

    @property
    def bytes_out(self) -> int:
        return sum(t.bytes_out for t in self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)
