"""Clean fixture: dominance comparisons routed through the kernel seam."""

import numpy as np

from repro.core.dominance import DominanceCounter, dominates, validate_points
from repro.core.kernels import get_kernel


def local_skyline(points: np.ndarray, kernel: str | None = None) -> np.ndarray:
    pts = validate_points(points)
    counter = DominanceCounter()
    return get_kernel(kernel).skyline(pts, counter=counter)


def merge(window: np.ndarray, point: np.ndarray, kernel=None) -> bool:
    knl = get_kernel(kernel)
    return not knl.any_dominates(window, point)


def reference_check(a: np.ndarray, b: np.ndarray) -> bool:
    # Deliberate raw-primitive use, justified on the line.
    return dominates(a, b)  # repro: allow[kernel-seam] -- test oracle
