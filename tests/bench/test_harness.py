"""Tests for the experiment harness (dataset cache, point runs, sweeps)."""

import numpy as np
import pytest

from repro.bench.harness import DatasetCache, PointRecord, run_point, sweep
from repro.bench.timing import Timer, best_of, measurements_summary
from repro.mapreduce.cluster import ClusterSpec

QUICK = ClusterSpec(num_nodes=2, speed_factor=1.0)


@pytest.fixture(scope="module")
def cache():
    return DatasetCache()


class TestDatasetCache:
    def test_matrix_shape(self, cache):
        m = cache.matrix(500, 4)
        assert m.shape == (500, 4)

    def test_cached_identity(self, cache):
        assert cache.matrix(500, 4) is cache.matrix(500, 4)

    def test_subsample_below_base(self, cache):
        assert len(cache.dataset(200)) == 200

    def test_extension_above_base(self, cache):
        ds = cache.dataset(12_000)
        assert len(ds) == 12_000

    def test_small_is_subset_of_base(self, cache):
        small = cache.dataset(300)
        base = cache.dataset(10_000)
        base_rows = {tuple(r) for r in base.raw}
        assert all(tuple(r) in base_rows for r in small.raw[:20])

    def test_clear(self):
        c = DatasetCache()
        m = c.matrix(100, 2)
        c.clear()
        assert c.matrix(100, 2) is not m


class TestRunPoint:
    def test_record_fields(self, cache):
        rec = run_point("angle", 400, 3, cluster=QUICK, cache=cache)
        assert isinstance(rec, PointRecord)
        assert rec.method == "angle"
        assert rec.n == 400 and rec.d == 3
        assert rec.workers == 2
        assert rec.partitions == 4
        assert rec.sim_total_s > 0
        assert rec.sim_total_s == pytest.approx(rec.sim_map_s + rec.sim_reduce_s)
        assert rec.global_skyline > 0
        assert 0 <= rec.optimality <= 1

    def test_methods_share_global_skyline_size(self, cache):
        sizes = {
            run_point(m, 400, 3, cluster=QUICK, cache=cache).global_skyline
            for m in ("dim", "grid", "angle")
        }
        assert len(sizes) == 1

    def test_mr_kwargs_forwarded(self, cache):
        rec = run_point(
            "angle", 400, 3, cluster=QUICK, cache=cache, num_partitions=2
        )
        assert rec.partitions == 2


class TestSweep:
    def test_cross_product(self, cache):
        records = sweep(("dim", "angle"), 300, (2, 3), cluster=QUICK, cache=cache)
        assert len(records) == 4
        assert {(r.method, r.d) for r in records} == {
            ("dim", 2),
            ("dim", 3),
            ("angle", 2),
            ("angle", 3),
        }


class TestTiming:
    def test_timer_accumulates(self):
        t = Timer()
        with t.measure("x"):
            pass
        with t.measure("x"):
            pass
        assert len(t.samples["x"]) == 2
        assert t.total("x") >= 0
        assert t.mean("x") >= 0

    def test_timer_unknown_name(self):
        assert Timer().total("nothing") == 0.0
        assert Timer().mean("nothing") == 0.0

    def test_best_of(self):
        calls = []

        def fn():
            calls.append(1)
            return "result"

        best, result = best_of(fn, repeats=3)
        assert len(calls) == 3
        assert result == "result"
        assert best >= 0

    def test_best_of_validates(self):
        with pytest.raises(ValueError):
            best_of(lambda: None, repeats=0)

    def test_summary(self):
        s = measurements_summary([1.0, 2.0, 3.0])
        assert s == {"min": 1.0, "mean": 2.0, "max": 3.0, "n": 3}
        assert measurements_summary([])["n"] == 0
