"""Tests for QoS-based service selection and utility ranking."""

import numpy as np
import pytest

from repro.core.skyline import skyline_numpy
from repro.services.qws import generate_qws
from repro.services.selection import (
    SelectionResult,
    rank_by_utility,
    select_services,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_qws(800, seed=3)


class TestSelect:
    def test_local_mode_matches_reference(self, dataset):
        sel = select_services(dataset, dims=4, mode="local")
        expected = skyline_numpy(dataset.qos_matrix(4))
        assert np.array_equal(np.sort(sel.indices), expected)
        assert sel.dims == 4
        assert len(sel) == expected.size

    @pytest.mark.parametrize("mode", ["mr-dim", "mr-grid", "mr-angle"])
    def test_mr_modes_match_local(self, dataset, mode):
        local = select_services(dataset, dims=4, mode="local")
        mr = select_services(dataset, dims=4, mode=mode)
        assert np.array_equal(np.sort(mr.indices), np.sort(local.indices))

    def test_default_dims_is_all(self, dataset):
        sel = select_services(dataset)
        assert sel.dims == dataset.num_attributes

    def test_unknown_mode(self, dataset):
        with pytest.raises(ValueError, match="unknown mode"):
            select_services(dataset, mode="quantum")  # type: ignore[arg-type]


class TestRanking:
    def test_best_first(self, dataset):
        sel = select_services(dataset, dims=4)
        ranked = rank_by_utility(dataset, sel)
        matrix = dataset.qos_matrix(4)
        lo = matrix[sel.indices].min(axis=0)
        span = matrix[sel.indices].max(axis=0) - lo
        span[span == 0] = 1.0
        norm = (matrix[ranked] - lo) / span
        costs = norm.mean(axis=1)
        assert np.all(np.diff(costs) >= -1e-12)

    def test_ranked_is_permutation_of_selection(self, dataset):
        sel = select_services(dataset, dims=4)
        ranked = rank_by_utility(dataset, sel)
        assert sorted(ranked.tolist()) == sorted(sel.indices.tolist())

    def test_custom_weights_change_order(self, dataset):
        sel = select_services(dataset, dims=2)
        if len(sel) < 3:
            pytest.skip("skyline too small to compare orderings")
        rt_first = rank_by_utility(dataset, sel, weights=[1.0, 0.0])
        cost_first = rank_by_utility(dataset, sel, weights=[0.0, 1.0])
        assert rt_first.tolist() != cost_first.tolist()

    def test_weight_validation(self, dataset):
        sel = select_services(dataset, dims=4)
        with pytest.raises(ValueError):
            rank_by_utility(dataset, sel, weights=[1.0])
        with pytest.raises(ValueError):
            rank_by_utility(dataset, sel, weights=[-1.0, 1.0, 1.0, 1.0])

    def test_empty_selection(self, dataset):
        empty = SelectionResult(indices=np.empty(0, dtype=np.intp), dims=4, mode="local")
        assert rank_by_utility(dataset, empty).size == 0

    def test_single_dim_weight_extreme(self, dataset):
        sel = select_services(dataset, dims=2)
        ranked = rank_by_utility(dataset, sel, weights=[1.0, 0.0])
        rts = dataset.qos_matrix(2)[ranked][:, 0]
        assert np.all(np.diff(rts) >= 0)
