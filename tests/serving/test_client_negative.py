"""Negative transport paths of :class:`ServingClient`.

Every way the peer can stop speaking the protocol must surface as
:class:`ServingConnectionError` (or a plain ``OSError`` at connect time),
never a hang, an unbounded buffer, or a half-decoded dict: connection
refused, mid-stream EOF, a truncated line, an oversized response line,
garbage JSON, and a non-object response.
"""

import json
import socket
import threading

import pytest

from repro.serving.client import (
    DEFAULT_MAX_LINE_BYTES,
    ServingClient,
    ServingConnectionError,
)


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class _ScriptedPeer:
    """Accepts one connection and answers every request line from a script.

    Each script entry is either bytes to write verbatim or the sentinel
    ``"close"`` — sever the connection without answering.
    """

    def __init__(self, *script):
        self._script = list(script)
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._listener.accept()
        with conn:
            reader = conn.makefile("rb")
            for action in self._script:
                if not reader.readline():
                    return  # client hung up first
                if action == "close":
                    return
                conn.sendall(action)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._listener.close()
        self._thread.join(timeout=10)


def _connect(peer: _ScriptedPeer, **kwargs) -> ServingClient:
    host, port = peer.address
    return ServingClient.connect(host, port, timeout=10, **kwargs)


class TestConnectionRefused:
    def test_connect_to_closed_port_raises_oserror(self):
        port = _free_port()  # nothing listens here anymore
        with pytest.raises(OSError):
            ServingClient.connect("127.0.0.1", port, timeout=2)


class TestMidStreamEof:
    def test_close_instead_of_response(self):
        with _ScriptedPeer("close") as peer, _connect(peer) as client:
            with pytest.raises(ServingConnectionError, match="closed"):
                client.call(op="ping")

    def test_truncated_line_then_eof(self):
        # Half a JSON object and no newline: EOF mid-response.
        with _ScriptedPeer(b'{"ok": tr') as peer, _connect(peer) as client:
            with pytest.raises(ServingConnectionError):
                client.call(op="ping")

    def test_success_then_eof_on_second_call(self):
        first = json.dumps({"ok": True, "pong": True}).encode() + b"\n"
        with _ScriptedPeer(first, "close") as peer, _connect(peer) as client:
            assert client.call(op="ping")["pong"] is True
            with pytest.raises(ServingConnectionError):
                client.call(op="ping")


class TestOversizedLine:
    def test_line_beyond_limit_raises_not_buffers(self):
        huge = b'{"ok": true, "pad": "' + b"x" * 4096 + b'"}\n'
        with _ScriptedPeer(huge) as peer:
            with _connect(peer) as client:
                client.max_line_bytes = 64
                with pytest.raises(ServingConnectionError, match="exceeded"):
                    client.call(op="ping")

    def test_line_within_limit_passes(self):
        line = json.dumps({"ok": True, "pong": True}).encode() + b"\n"
        with _ScriptedPeer(line) as peer, _connect(peer) as client:
            client.max_line_bytes = 4096
            assert client.call(op="ping")["ok"] is True

    def test_ctor_rejects_degenerate_limit(self):
        import io

        with pytest.raises(ValueError):
            ServingClient(io.StringIO(), io.StringIO(), max_line_bytes=1)

    def test_default_limit_is_generous(self):
        assert DEFAULT_MAX_LINE_BYTES >= 2**20


class TestGarbageResponse:
    def test_non_json_line(self):
        with _ScriptedPeer(b"!! not json at all\n") as peer, \
                _connect(peer) as client:
            with pytest.raises(ServingConnectionError, match="bad JSON"):
                client.call(op="ping")

    def test_json_but_not_an_object(self):
        with _ScriptedPeer(b"[1, 2, 3]\n") as peer, _connect(peer) as client:
            with pytest.raises(ServingConnectionError, match="malformed"):
                client.call(op="ping")

    def test_timeout_surfaces_as_connection_error(self):
        # A peer that reads the request but never answers: settimeout must
        # bound the read and surface the timeout as the transport dying.
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()
        try:
            with ServingClient.connect(host, port, timeout=10) as client:
                client.settimeout(0.2)
                with pytest.raises(ServingConnectionError):
                    client.call(op="ping")
        finally:
            listener.close()
