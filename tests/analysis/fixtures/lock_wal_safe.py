"""Clean counterpart of ``lock_wal_unsafe.py``: every WAL append,
checkpoint and truncate call site runs under the owning lock (or in the
constructor, before the object is shared)."""

import threading


class DurableStore:
    """Logs every mutation under the lock that guards the generation."""

    def __init__(self, log):
        self._lock = threading.RLock()
        self._generation = 0
        self._durability = log
        self._durability.log_register({})  # construction: not yet shared

    def insert(self, row):
        with self._lock:
            self._durability.log_insert(row)
            self._generation += 1

    def remove(self, point_id):
        with self._lock:
            self._durability.log_remove(point_id)
            self._generation += 1

    def flush_now(self):
        with self._lock:
            self._durability.checkpoint({})


class ShardLog:
    """Appends and truncates only while holding the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._wal = None
        self._applied = 0

    def apply(self, record):
        with self._lock:
            self._wal.append_record(record)
            self._applied += 1

    def compact(self):
        with self._lock:
            self._wal.truncate()
