"""JSON-lines protocol: request parsing, dispatch, and error shapes."""

import io

import numpy as np
import pytest

from repro.serving.protocol import (
    PROTOCOL_VERSION,
    handle_request,
    parse_query_spec,
)
from repro.serving.server import serve_lines
from repro.serving.service import ServeConfig, SkylineService


def _service(n=50):
    service = SkylineService()
    service.register("qws", np.random.default_rng(0).random((n, 3)) + 0.01)
    return service


class TestParseQuerySpec:
    def test_defaults_to_skyline(self):
        spec = parse_query_spec({"dataset": "qws"})
        assert spec.kind == "skyline"

    def test_parses_every_kind(self):
        assert parse_query_spec(
            {"dataset": "qws", "kind": "skyband", "k": 2}
        ).k == 2
        constrained = parse_query_spec({
            "dataset": "qws", "kind": "constrained",
            "lower": [0.0, 0.0], "upper": [1.0, 1.0],
        })
        assert constrained.lower == (0.0, 0.0)
        assert parse_query_spec(
            {"dataset": "qws", "kind": "subspace", "dims": [2, 0]}
        ).dims == (0, 2)

    def test_invalid_spec_raises(self):
        with pytest.raises(ValueError):
            parse_query_spec({"dataset": "qws", "kind": "nope"})


class TestDispatch:
    def test_register_inline_points(self):
        service = SkylineService()
        response = handle_request(service, {
            "op": "register", "dataset": "d",
            "points": [[1.0, 2.0], [2.0, 1.0]],
        })
        assert response == {"ok": True, "dataset": "d", "generation": 1, "size": 2}

    def test_register_generated_sample(self):
        service = SkylineService()
        response = handle_request(service, {
            "op": "register", "dataset": "g",
            "generate": {"n": 40, "d": 4, "seed": 3},
        })
        assert response["ok"] and response["size"] == 40

    def test_query_insert_requery(self):
        service = _service()
        first = handle_request(service, {"op": "query", "dataset": "qws"})
        assert first["ok"] and not first["cache_hit"]
        inserted = handle_request(service, {
            "op": "insert", "dataset": "qws", "point": [0.001, 0.001, 0.001],
        })
        assert inserted["generation"] == 2
        second = handle_request(service, {"op": "query", "dataset": "qws"})
        assert second["generation"] == 2 and not second["cache_hit"]
        assert inserted["id"] in second["ids"]
        removed = handle_request(service, {
            "op": "remove", "dataset": "qws", "id": inserted["id"],
        })
        assert removed == {"ok": True, "generation": 3}

    def test_stats_and_ping(self):
        service = _service()
        stats = handle_request(service, {"op": "stats"})
        assert stats["ok"] and stats["version"] == PROTOCOL_VERSION
        assert stats["datasets"]["qws"]["size"] == 50
        assert handle_request(service, {"op": "ping"})["pong"] is True

    def test_unknown_op_and_non_object(self):
        service = _service()
        bad = handle_request(service, {"op": "frobnicate"})
        assert not bad["ok"] and "unknown op" in bad["error"]
        assert not handle_request(service, ["not", "an", "object"])["ok"]

    def test_unknown_dataset_is_an_error_response(self):
        response = handle_request(_service(), {"op": "query", "dataset": "nope"})
        assert response["ok"] is False
        assert response["status"] == "error"
        assert "unknown dataset" in response["error"]

    def test_invalid_params_are_error_responses(self):
        service = _service()
        response = handle_request(service, {
            "op": "query", "dataset": "qws", "kind": "skyband",
        })
        assert response["ok"] is False and response["status"] == "error"

    def test_overload_is_a_rejected_response(self):
        service = SkylineService(
            ServeConfig(max_inflight=1, max_queue=0, stale_on_overload=False)
        )
        service.register("qws", np.random.default_rng(0).random((20, 3)) + 0.01)
        assert service._admission.acquire(blocking=False)
        try:
            response = handle_request(service, {"op": "query", "dataset": "qws"})
        finally:
            service._admission.release()
        assert response["ok"] is False
        assert response["status"] == "rejected"
        assert response["reason"] == "overload"


class TestServeLines:
    def test_session_runs_until_shutdown(self):
        service = _service()
        out = io.StringIO()
        lines = [
            "",  # blank lines are skipped
            '{"op": "ping"}',
            "this is not json",
            '{"op": "query", "dataset": "qws"}',
            '{"op": "shutdown"}',
            '{"op": "ping"}',  # never reached
        ]
        stopped = serve_lines(service, lines, out)
        assert stopped is True
        responses = out.getvalue().strip().splitlines()
        assert len(responses) == 4  # ping, bad-json error, query, shutdown
        assert '"pong": true' in responses[0]
        assert "bad JSON" in responses[1]

    def test_session_without_shutdown_returns_false(self):
        service = _service()
        out = io.StringIO()
        assert serve_lines(service, ['{"op": "ping"}'], out) is False
