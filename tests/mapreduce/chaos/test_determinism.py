"""One seed, one plan: two runs are indistinguishable.

The acceptance criterion for the fault plane is replayability — identical
seed + plan must produce the identical fault schedule, retry spend, and
decision/span structure on every run.  Serial runs are compared *exactly*
(span sequence, ids and all); thread-pool runs are compared as canonical
multisets because completion order may interleave differently even when
every scheduling decision is the same.
"""

import pytest

from repro.mapreduce import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    Job,
    JobConf,
    Mapper,
    Reducer,
    RetryPolicy,
    Runner,
)
from repro.observability.tracing import Tracer

POOL_WORKERS = 2

#: A probabilistic plan, so determinism is earned (seeded draws), not
#: trivial (times-bounded rules alone would fire identically by counting).
PLAN = FaultPlan(
    seed=21,
    rules=(
        FaultRule(fault="crash", kind="map", times=2, probability=0.6),
        FaultRule(fault="crash", kind="reduce", index=0, times=1, probability=0.5),
    ),
    policy=RetryPolicy(
        max_retries=4,
        backoff_base_s=0.0005,
        backoff_factor=2.0,
        backoff_max_s=0.002,
        jitter=0.5,
        seed=21,
    ),
)

#: Span attributes that must replay; timing attributes must not.
_STABLE_ATTRS = (
    "decision",
    "attempt",
    "task_kind",
    "executor",
    "backoff_s",
    "timeout_s",
    "phase",
    "num_map_tasks",
    "num_reducers",
    "tasks",
    "records_in",
    "records_out",
    "partial",
    "lost_partitions",
)


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


WORDS = [(None, "a b a"), (None, "b b c"), (None, "c a d")]
EXPECTED = {"a": 3, "b": 3, "c": 2, "d": 1}


def _job():
    return Job(
        name="wordcount",
        mapper=TokenMapper,
        reducer=SumReducer,
        conf=JobConf(num_reducers=2, num_map_tasks=3),
    )


def _one_run(executor):
    """One chaos run with a fresh injector and a span-keeping tracer."""
    tracer = Tracer(keep_spans=True)
    injector = FaultInjector(PLAN)
    with Runner(
        executor,
        num_workers=POOL_WORKERS,
        fault_plan=injector,
        tracer=tracer,
    ) as runner:
        result = runner.run(_job(), records=WORDS)
    return result, injector, tracer.finished


def _canonical_span(span):
    attrs = tuple(
        (k, tuple(v) if isinstance(v, list) else v)
        for k, v in sorted(span.attrs.items())
        if k in _STABLE_ATTRS
    )
    return (span.name, span.kind, span.status, attrs)


class TestReplayDeterminism:
    def test_serial_runs_are_exactly_identical(self):
        (r1, i1, s1), (r2, i2, s2) = _one_run("serial"), _one_run("serial")
        assert dict(r1.output_pairs()) == EXPECTED
        assert r1.outputs == r2.outputs
        # Identical fault schedule, event for event.
        assert i1.events == i2.events
        assert i1.injected > 0
        # Identical retry spend.
        assert r1.counters == r2.counters
        # Identical span *sequence*, including the tracer's deterministic
        # span/parent id assignment — the strongest replay guarantee.
        assert [
            (_canonical_span(s), s.span_id, s.parent_id) for s in s1
        ] == [(_canonical_span(s), s.span_id, s.parent_id) for s in s2]

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_pool_runs_replay_schedule_counters_and_span_set(self, executor):
        (r1, i1, s1), (r2, i2, s2) = _one_run(executor), _one_run(executor)
        assert dict(r1.output_pairs()) == EXPECTED
        assert r1.outputs == r2.outputs
        assert i1.events == i2.events
        assert i1.injected > 0
        assert r1.counters == r2.counters
        # Pool completion order may interleave, so compare the canonical
        # span multiset rather than the emission sequence.
        assert sorted(map(_canonical_span, s1)) == sorted(
            map(_canonical_span, s2)
        )

    def test_serial_and_pool_schedules_agree(self):
        """The fault schedule is a property of the plan, not the executor."""
        (_, i_serial, _), (_, i_threads, _) = (
            _one_run("serial"),
            _one_run("threads"),
        )
        assert i_serial.events == i_threads.events
