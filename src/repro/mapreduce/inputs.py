"""Input formats: turning datasets into input splits.

An :class:`InputSplit` is the unit of map-task scheduling — one map task per
split, as in Hadoop.  Two formats are provided:

* :class:`SequenceInputFormat` — wraps an in-memory sequence of ``(key,
  value)`` records and chunks it into a requested number of splits.  This is
  the fast path used by the skyline jobs (points live in NumPy arrays).
* :class:`TextInputFormat` — reads a file from the block filesystem and
  produces one split per block, with Hadoop's line-spanning rule: a split
  whose offset is non-zero skips the (partial) first line, and every split
  reads past its end boundary to finish its last line.  Records are
  ``(byte_offset, line)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, List, Sequence, Tuple

from repro.mapreduce.errors import JobConfigError
from repro.mapreduce.fs import BlockFileSystem


@dataclass(slots=True)
class InputSplit:
    """One map task's worth of input records."""

    index: int
    records: List[Tuple[Hashable, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Tuple[Hashable, Any]]:
        return iter(self.records)


class InputFormat:
    """Produces the splits a job will map over."""

    def splits(self) -> List[InputSplit]:
        raise NotImplementedError


class SequenceInputFormat(InputFormat):
    """Chunk an in-memory record sequence into ``num_splits`` splits.

    Splits are contiguous slices with sizes differing by at most one record,
    so the map phase is balanced when records are homogeneous.
    """

    def __init__(
        self,
        records: Sequence[Tuple[Hashable, Any]] | Iterable[Tuple[Hashable, Any]],
        num_splits: int,
    ):
        self._records = list(records)
        if num_splits <= 0:
            raise JobConfigError(f"num_splits must be positive, got {num_splits}")
        self._num_splits = num_splits

    def splits(self) -> List[InputSplit]:
        n = len(self._records)
        k = min(self._num_splits, n) or 1
        base, extra = divmod(n, k)
        out: List[InputSplit] = []
        start = 0
        for i in range(k):
            size = base + (1 if i < extra else 0)
            out.append(InputSplit(index=i, records=self._records[start : start + size]))
            start += size
        return out


class TextInputFormat(InputFormat):
    """Block-aligned line-oriented splits over a file in the block filesystem."""

    def __init__(self, fs: BlockFileSystem, path: str):
        self._fs = fs
        self._path = path

    def splits(self) -> List[InputSplit]:
        locations = self._fs.block_locations(self._path)
        size = self._fs.status(self._path).size
        out: List[InputSplit] = []
        for loc in locations:
            records = list(self._read_split(loc.offset, loc.length, size))
            out.append(InputSplit(index=loc.index, records=records))
        return out

    def _read_split(
        self, offset: int, length: int, file_size: int
    ) -> Iterator[Tuple[int, str]]:
        """Yield ``(byte_offset, line)`` records owned by this split.

        Ownership rule (Hadoop's): a line belongs to the split in which it
        *starts*, except that the very first line of the file belongs to the
        first split.  We therefore skip a partial leading line when
        ``offset > 0`` and read beyond ``offset + length`` to complete the
        final line.
        """
        if length == 0:
            return
        start = offset
        if offset > 0:
            # Find where the current line ends; our first full line starts after.
            probe = offset - 1
            window = self._fs.read_range(self._path, probe, length + 1)
            newline = window.find(b"\n")
            if newline < 0:
                return  # the line spans the whole split; a previous split owns it
            start = probe + newline + 1
        end = offset + length
        if start >= end:
            return
        # Read our region plus a tail window to finish the last line.
        tail = min(file_size - end, 1 << 16)
        raw = self._fs.read_range(self._path, start, (end - start) + tail)
        pos = 0
        emitted_end = start
        while emitted_end < end and pos < len(raw):
            newline = raw.find(b"\n", pos)
            if newline < 0:
                line = raw[pos:]
                yield start + pos, line.decode("utf-8")
                return
            yield start + pos, raw[pos:newline].decode("utf-8")
            pos = newline + 1
            emitted_end = start + pos


def make_splits(
    records: Sequence[Tuple[Hashable, Any]], num_splits: int
) -> List[InputSplit]:
    """Convenience wrapper: chunk records into splits in one call."""
    return SequenceInputFormat(records, num_splits).splits()
