"""Dataset persistence: CSV and NPZ round-trips for service datasets.

CSV is the interchange format (one header row of attribute names, one line
per service), convenient for feeding external tools or inspecting the
synthetic QWS data; NPZ is the fast binary path for large sweeps.  Both
preserve the schema (names, units, polarity, bounds) so a reloaded dataset
normalises identically.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.services.qos import QoSSchema
    from repro.services.qws import ServiceDataset

__all__ = ["save_csv", "load_csv", "save_npz", "load_npz"]

_SCHEMA_KEY = "__schema__"


def _schema_to_json(schema: "QoSSchema") -> str:
    return json.dumps(
        [
            {
                "name": a.name,
                "unit": a.unit,
                "polarity": a.polarity.value,
                "upper_bound": a.upper_bound,
            }
            for a in schema
        ]
    )


def _schema_from_json(payload: str) -> "QoSSchema":
    from repro.services.qos import Polarity, QoSAttribute, QoSSchema

    entries = json.loads(payload)
    return QoSSchema(
        [
            QoSAttribute(
                name=e["name"],
                unit=e["unit"],
                polarity=Polarity(e["polarity"]),
                upper_bound=e["upper_bound"],
            )
            for e in entries
        ]
    )


def save_csv(dataset: "ServiceDataset", path: str | Path) -> None:
    """Write a dataset as CSV with a ``#schema`` comment line + header."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        fh.write(f"#schema {_schema_to_json(dataset.schema)}\n")
        writer = csv.writer(fh)
        writer.writerow(dataset.schema.names)
        for row in dataset.raw:
            writer.writerow([f"{v:.10g}" for v in row])


def load_csv(path: str | Path) -> "ServiceDataset":
    """Inverse of :func:`save_csv`."""
    from repro.services.qws import ServiceDataset

    path = Path(path)
    with path.open() as fh:
        first = fh.readline()
        if not first.startswith("#schema "):
            raise ValueError(f"{path}: missing '#schema' line")
        schema = _schema_from_json(first[len("#schema ") :])
        reader = csv.reader(fh)
        header = next(reader)
        if header != schema.names:
            raise ValueError(
                f"{path}: header {header} does not match schema {schema.names}"
            )
        rows = [[float(v) for v in line] for line in reader if line]
    raw = np.array(rows, dtype=np.float64).reshape(len(rows), len(schema))
    return ServiceDataset(raw=raw, schema=schema, name=path.stem)


def save_npz(dataset: "ServiceDataset", path: str | Path) -> None:
    """Binary save (fast path for 100 k-service sweeps)."""
    np.savez_compressed(
        Path(path),
        raw=dataset.raw,
        schema=np.frombuffer(
            _schema_to_json(dataset.schema).encode("utf-8"), dtype=np.uint8
        ),
        name=np.frombuffer(dataset.name.encode("utf-8"), dtype=np.uint8),
    )


def load_npz(path: str | Path) -> "ServiceDataset":
    """Inverse of :func:`save_npz`."""
    from repro.services.qws import ServiceDataset

    with np.load(Path(path)) as payload:
        schema = _schema_from_json(bytes(payload["schema"]).decode("utf-8"))
        name = bytes(payload["name"]).decode("utf-8")
        return ServiceDataset(raw=payload["raw"], schema=schema, name=name)
