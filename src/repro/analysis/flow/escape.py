"""Escape analysis: mutable state handed to another thread unguarded.

A callable that reaches a thread hand-off point (``Thread(target=...)``,
``Timer``, ``executor.submit``, ``loop.run_in_executor``) executes
concurrently with its creator.  Two escape shapes are checked:

* **bound method** — the method (class-hierarchy resolved) mutates
  ``self.X`` with no lock held, and *no* method of the class ever writes
  ``X`` under a lock.  The attribute is shared across threads with no
  guard at all.  (One locked write elsewhere is the ``lock-discipline``
  rule's territory — the split keeps the two rules disjoint.)
* **closure** — a locally-defined function mutates a free variable of the
  enclosing scope (``results.append(...)``, ``acc[k] = v``) outside any
  ``with <lock>:`` region in the closure body.

Constructor writes don't count as guards (construction precedes sharing),
and an attribute that *is* a lock is obviously exempt.  Like everything in
this package, unresolvable callables produce no finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import FunctionInfo
from repro.analysis.flow.locks import (
    _CONSTRUCTORS,
    _MUTATORS,
    CallSiteInfo,
    FunctionSummary,
    LockAnalysis,
)
from repro.analysis.project import Module

__all__ = ["EscapeFinding", "find_escapes"]


@dataclass(slots=True)
class EscapeFinding:
    """One unguarded escape, anchored at the hand-off site."""

    module: Module
    node: ast.AST
    fn_qualname: str
    target_qualname: str
    #: Attribute / variable name being mutated without a guard.
    state_name: str
    #: "attribute" (bound method) or "closure" (free variable).
    shape: str


def find_escapes(analysis: LockAnalysis) -> List[EscapeFinding]:
    """All unguarded escapes across the project, deterministic order."""
    locked_attrs = _locked_attr_index(analysis)
    out: List[EscapeFinding] = []
    for qualname in sorted(analysis.summaries):
        summary = analysis.summaries[qualname]
        for site in summary.call_sites:
            if not site.async_sink:
                continue
            for target in site.escaping:
                out.extend(
                    _check_target(analysis, summary, site, target, locked_attrs)
                )
    return out


def _locked_attr_index(analysis: LockAnalysis) -> Set[Tuple[str, str]]:
    """(class qualname, attr) pairs with at least one locked write."""
    locked: Set[Tuple[str, str]] = set()
    for summary in analysis.summaries.values():
        info = summary.fn.class_info
        if info is None or summary.fn.name in _CONSTRUCTORS:
            continue
        for attr, guarded, _node in summary.attr_writes:
            if guarded:
                locked.add((info.qualname, attr))
    return locked


def _check_target(
    analysis: LockAnalysis,
    summary: FunctionSummary,
    site: CallSiteInfo,
    target: FunctionInfo,
    locked_attrs: Set[Tuple[str, str]],
) -> Iterator[EscapeFinding]:
    if "<local>" in target.qualname:
        yield from _check_closure(analysis, summary, site, target)
        return
    target_summary = analysis.summaries.get(target.qualname)
    if target_summary is None or target.class_info is None:
        return
    if target.name in _CONSTRUCTORS:
        return
    info = target.class_info
    reported: Set[str] = set()
    for attr, guarded, _node in target_summary.attr_writes:
        if guarded or attr in reported:
            continue
        if analysis.graph.lookup_lock_attr(info, attr) is not None:
            continue
        # Any locked write to this attr anywhere in the hierarchy makes it
        # lock-discipline's problem, not an escape.
        hierarchy = analysis.graph.mro(info)
        if any((cls.qualname, attr) in locked_attrs for cls in hierarchy):
            continue
        reported.add(attr)
        yield EscapeFinding(
            module=summary.fn.module,
            node=site.node,
            fn_qualname=summary.fn.qualname,
            target_qualname=target.qualname,
            state_name=f"{info.node.name}.{attr}",
            shape="attribute",
        )


def _check_closure(
    analysis: LockAnalysis,
    summary: FunctionSummary,
    site: CallSiteInfo,
    target: FunctionInfo,
) -> Iterator[EscapeFinding]:
    bound = _bound_names(target.node)
    reported: Set[str] = set()

    def visit(node: ast.AST, guarded: bool) -> Iterator[str]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            holds = guarded or any(
                analysis.lock_ids_in(summary.fn, item.context_expr)
                for item in node.items
            )
            for stmt in node.body:
                yield from visit(stmt, holds)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # deeper nesting: out of scope for the heuristic
        if not guarded:
            name = _free_mutation(node, bound)
            if name is not None:
                yield name
        for child in ast.iter_child_nodes(node):
            yield from visit(child, guarded)

    for stmt in target.node.body:
        for name in visit(stmt, False):
            if name not in reported:
                reported.add(name)
                yield EscapeFinding(
                    module=summary.fn.module,
                    node=site.node,
                    fn_qualname=summary.fn.qualname,
                    target_qualname=target.qualname,
                    state_name=name,
                    shape="closure",
                )


def _bound_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
    """Names the closure binds itself (params + local assignments)."""
    args = fn.args
    bound = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    bound.add(leaf.id)
    return bound


def _free_mutation(node: ast.AST, bound: Set[str]) -> Optional[str]:
    """Name of a free variable this node mutates, if any."""
    if isinstance(node, ast.Call):
        callee = node.func
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr in _MUTATORS
            and isinstance(callee.value, ast.Name)
            and callee.value.id not in bound
        ):
            return callee.value.id
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id not in bound:
                    return target.value.id
    return None
