"""Tests for the Table reporting primitives."""

import pytest

from repro.bench.reporting import Table


@pytest.fixture
def table():
    t = Table(title="demo", columns=["method", "time_s"], precision=2)
    t.add_row("angle", 1.234567)
    t.add_row("dim", 2.0)
    return t


class TestRows:
    def test_add_row_width_checked(self, table):
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_column_extraction(self, table):
        assert table.column("method") == ["angle", "dim"]
        assert table.column("time_s") == [1.234567, 2.0]

    def test_unknown_column(self, table):
        with pytest.raises(ValueError):
            table.column("nope")


class TestRender:
    def test_ascii_contains_everything(self, table):
        out = table.render()
        assert "== demo ==" in out
        assert "angle" in out and "1.23" in out
        assert "method" in out and "time_s" in out

    def test_precision_applied(self, table):
        assert "1.23" in table.render()
        assert "1.234567" not in table.render()

    def test_notes_rendered(self, table):
        table.add_note("hello note")
        assert "note: hello note" in table.render()

    def test_empty_table_renders(self):
        t = Table(title="empty", columns=["a", "b"])
        out = t.render()
        assert "empty" in out and "a" in out

    def test_str_is_render(self, table):
        assert str(table) == table.render()


class TestMarkdownCsv:
    def test_markdown_structure(self, table):
        md = table.to_markdown()
        lines = md.strip().splitlines()
        assert lines[0] == "**demo**"
        assert lines[2] == "| method | time_s |"
        assert lines[3] == "|---|---|"
        assert "| angle | 1.23 |" in md

    def test_markdown_notes(self, table):
        table.add_note("context")
        assert "_context_" in table.to_markdown()

    def test_csv(self, table):
        csv = table.to_csv()
        assert csv.splitlines()[0] == "method,time_s"
        assert "angle,1.23" in csv

    def test_bool_cells(self):
        t = Table(title="flags", columns=["ok"])
        t.add_row(True)
        assert "True" in t.render()

    def test_int_cells_not_float_formatted(self):
        t = Table(title="ints", columns=["n"], precision=3)
        t.add_row(42)
        assert "42" in t.render()
        assert "42.000" not in t.render()
