"""Tests for the synthetic QWS workload generator and extension procedure."""

import numpy as np
import pytest

from repro.core.sfs import sfs_skyline
from repro.services.qws import (
    QWS_SCHEMA,
    ServiceDataset,
    extend_dataset,
    generate_qws,
    quantize_raw,
)


@pytest.fixture(scope="module")
def base():
    return generate_qws(3000, seed=42)


class TestGenerate:
    def test_shape_and_schema(self, base):
        assert base.raw.shape == (3000, 10)
        assert base.schema is QWS_SCHEMA
        assert len(base) == 3000

    def test_deterministic(self):
        a = generate_qws(100, seed=7)
        b = generate_qws(100, seed=7)
        assert np.array_equal(a.raw, b.raw)

    def test_seed_changes_data(self):
        a = generate_qws(100, seed=7)
        b = generate_qws(100, seed=8)
        assert not np.array_equal(a.raw, b.raw)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            generate_qws(0)

    def test_attribute_ranges(self, base):
        raw = base.raw
        names = QWS_SCHEMA.names
        pct_cols = [
            names.index(n)
            for n in (
                "availability",
                "successability",
                "reliability",
                "compliance",
                "best_practices",
                "documentation",
            )
        ]
        for j in pct_cols:
            assert raw[:, j].min() >= 0 and raw[:, j].max() <= 100
        assert raw[:, names.index("response_time")].min() > 0
        assert raw[:, names.index("throughput")].max() <= 50

    def test_quantization_applied(self, base):
        names = QWS_SCHEMA.names
        av = base.raw[:, names.index("availability")]
        assert np.array_equal(av, np.round(av))

    def test_correlations_have_expected_signs(self, base):
        names = QWS_SCHEMA.names
        raw = base.raw
        rt = raw[:, names.index("response_time")]
        la = raw[:, names.index("latency")]
        av = raw[:, names.index("availability")]
        su = raw[:, names.index("successability")]
        assert np.corrcoef(rt, la)[0, 1] > 0.4
        assert np.corrcoef(av, su)[0, 1] > 0.3
        assert np.corrcoef(rt, av)[0, 1] < -0.1

    def test_no_perfect_service(self, base):
        """The degenerate all-optimal corner must not exist (it would
        collapse the skyline to one point)."""
        m = base.qos_matrix(10)
        best = m.min(axis=0)
        assert not (m == best).all(axis=1).any()

    def test_skyline_grows_with_dimension(self, base):
        sizes = [sfs_skyline(base.qos_matrix(d)).indices.size for d in (2, 4, 6, 8, 10)]
        # Weak monotonicity (ties allow small dips); overall growth required.
        assert sizes[-1] > sizes[0]
        assert sizes[-1] >= 100


class TestDatasetContainer:
    def test_qos_matrix_orientation(self, base):
        m = base.qos_matrix(4)
        assert m.shape == (3000, 4)
        assert (m >= 0).all()

    def test_qos_matrix_default_all_dims(self, base):
        assert base.qos_matrix().shape == (3000, 10)

    def test_subset_sampling(self, base):
        sub = base.subset(100, seed=1)
        assert len(sub) == 100
        # Every sampled row exists in the base.
        base_rows = {tuple(r) for r in base.raw}
        assert all(tuple(r) in base_rows for r in sub.raw)

    def test_subset_bounds(self, base):
        with pytest.raises(ValueError):
            base.subset(0)
        with pytest.raises(ValueError):
            base.subset(len(base) + 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ServiceDataset(raw=np.ones((5, 3)), schema=QWS_SCHEMA)


class TestQuantize:
    def test_idempotent(self, base):
        assert np.array_equal(quantize_raw(base.raw), base.raw)

    def test_rounds_percentages_to_integers(self):
        raw = np.zeros((1, 10))
        raw[0, 1] = 93.7
        assert quantize_raw(raw)[0, 1] == 94.0


class TestExtension:
    @pytest.mark.parametrize("method", ["resample", "jitter"])
    def test_prefix_is_base(self, base, method):
        ext = extend_dataset(base, 4000, seed=1, method=method)
        assert len(ext) == 4000
        assert np.array_equal(ext.raw[:3000], base.raw)

    @pytest.mark.parametrize("method", ["resample", "jitter"])
    def test_marginals_close_to_base(self, base, method):
        ext = extend_dataset(base, 9000, seed=1, method=method)
        synth = ext.raw[3000:]
        for j in range(10):
            lo, hi = base.raw[:, j].min(), base.raw[:, j].max()
            assert synth[:, j].min() >= lo - 1e-9
            assert synth[:, j].max() <= hi + 1e-9
            base_med = np.median(base.raw[:, j])
            synth_med = np.median(synth[:, j])
            scale = max(base.raw[:, j].std(), 1e-9)
            assert abs(base_med - synth_med) < scale

    def test_resample_preserves_correlation_sign(self, base):
        ext = extend_dataset(base, 9000, seed=2, method="resample")
        synth = ext.raw[3000:]
        rt, la = synth[:, 0], synth[:, 7]
        assert np.corrcoef(rt, la)[0, 1] > 0.3

    def test_same_size_returns_copy(self, base):
        same = extend_dataset(base, len(base))
        assert np.array_equal(same.raw, base.raw)
        assert same.raw is not base.raw

    def test_shrinking_rejected(self, base):
        with pytest.raises(ValueError):
            extend_dataset(base, 10)

    def test_unknown_method_rejected(self, base):
        with pytest.raises(ValueError, match="unknown method"):
            extend_dataset(base, 4000, method="clone")

    def test_negative_narrow_range_rejected(self, base):
        with pytest.raises(ValueError):
            extend_dataset(base, 4000, method="jitter", narrow_range=-0.1)

    def test_deterministic(self, base):
        a = extend_dataset(base, 4000, seed=5)
        b = extend_dataset(base, 4000, seed=5)
        assert np.array_equal(a.raw, b.raw)

    def test_jitter_stays_near_parents(self, base):
        ext = extend_dataset(base, 3500, seed=3, method="jitter", narrow_range=0.01)
        synth = ext.raw[3000:]
        # Each synthetic row must be within 1% of a std of SOME base row,
        # plus the per-attribute quantisation step (values are re-rounded
        # to QWS measurement resolution after jittering).
        from repro.services.qws import _QUANT_DECIMALS

        quant_step = np.array([0.5 * 10.0**-d for d in _QUANT_DECIMALS])
        spread = base.raw.std(axis=0) * 0.01 + quant_step + 1e-9
        for row in synth[:50]:
            close = (np.abs(base.raw - row) <= spread).all(axis=1)
            assert close.any()
