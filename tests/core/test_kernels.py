"""Dominance kernels: selection plumbing, sort-first invariant, backends."""

import numpy as np
import pytest

from repro.core.dominance import DominanceCounter
from repro.core.filtering import compute_filter_points
from repro.core.kernels import (
    BLOCK_CHUNK,
    ENV_KERNEL,
    KERNEL_NAMES,
    BlockKernel,
    ScalarKernel,
    default_kernel_name,
    get_kernel,
    make_kernel,
    set_default_kernel,
    sort_first_order,
)
from repro.core.skyline import skyline_numpy


@pytest.fixture(autouse=True)
def _clean_kernel_state(monkeypatch):
    monkeypatch.delenv(ENV_KERNEL, raising=False)
    previous = set_default_kernel(None)
    yield
    set_default_kernel(previous)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestSelection:
    def test_registry_names(self):
        assert KERNEL_NAMES == ("scalar", "block")
        assert isinstance(get_kernel("scalar"), ScalarKernel)
        assert isinstance(get_kernel("block"), BlockKernel)

    def test_default_is_scalar(self):
        assert default_kernel_name() == "scalar"
        assert get_kernel(None).name == "scalar"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL, "block")
        assert default_kernel_name() == "block"
        assert get_kernel(None).name == "block"

    def test_set_default_beats_env_and_restores(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL, "scalar")
        previous = set_default_kernel("block")
        assert default_kernel_name() == "block"
        set_default_kernel(previous)
        assert default_kernel_name() == "scalar"

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            make_kernel("simd")
        with pytest.raises(ValueError, match="unknown kernel"):
            set_default_kernel("simd")

    def test_instance_passthrough(self):
        knl = get_kernel("block")
        assert make_kernel(knl) is knl
        assert get_kernel(knl) is knl

    def test_singletons(self):
        assert get_kernel("scalar") is get_kernel("scalar")
        assert get_kernel("block") is get_kernel("block")


class TestSortFirstOrder:
    @pytest.mark.parametrize("d", [2, 4, 10])
    def test_no_later_point_dominates_an_earlier_one(self, d):
        knl = get_kernel("scalar")
        pts = _rng(d).random((120, d))
        pts[10:20] = pts[0]  # duplicate run
        order = sort_first_order(pts)
        ordered = pts[order]
        for i in range(1, len(ordered)):
            assert not knl.any_dominates(ordered[i:], ordered[i - 1])

    def test_deterministic_permutation(self):
        pts = _rng(3).random((50, 4))
        assert np.array_equal(sort_first_order(pts), sort_first_order(pts))


def _datasets(d, seed=0):
    rng = _rng(seed)
    yield "random", rng.random((300, d))
    yield "duplicates", rng.integers(0, 3, size=(200, d)).astype(float)
    yield "degenerate", np.tile(rng.random((1, d)), (40, 1))
    anti = rng.random((150, d))
    anti[:, -1] = d - anti[:, :-1].sum(axis=1)  # all on a simplex: all skyline
    yield "anti-correlated", anti


class TestBackendParity:
    @pytest.mark.parametrize("d", [2, 4, 10])
    def test_skyline_matches_oracle_and_each_other(self, d):
        for name, pts in _datasets(d):
            oracle = skyline_numpy(pts)
            scalar = get_kernel("scalar").skyline(pts)
            block = get_kernel("block").skyline(pts)
            assert np.array_equal(scalar, oracle), name
            assert np.array_equal(block, oracle), name

    def test_block_chunk_boundaries(self):
        # Sizes straddling the candidate-chunk width exercise the chunked
        # sweep's window bookkeeping.
        for n in (BLOCK_CHUNK - 1, BLOCK_CHUNK, BLOCK_CHUNK + 37):
            pts = _rng(n).random((n, 3))
            assert np.array_equal(
                get_kernel("block").skyline(pts), skyline_numpy(pts)
            )

    def test_single_point_ops_agree(self):
        window = _rng(1).random((64, 5))
        point = window.mean(axis=0)
        scalar, block = get_kernel("scalar"), get_kernel("block")
        assert scalar.dominates(window[0], point) == block.dominates(
            window[0], point
        )
        assert scalar.any_dominates(window, point) == block.any_dominates(
            window, point
        )
        assert np.array_equal(
            scalar.dominated_in(window, point), block.dominated_in(window, point)
        )

    def test_counting_ops_agree(self):
        pts = _rng(2).random((180, 4))
        scalar, block = get_kernel("scalar"), get_kernel("block")
        assert np.array_equal(
            scalar.dominator_counts(pts), block.dominator_counts(pts)
        )
        assert np.array_equal(
            scalar.dominated_counts(pts), block.dominated_counts(pts)
        )

    def test_dominance_tests_counted(self):
        pts = _rng(5).random((256, 4))
        for name in KERNEL_NAMES:
            counter = DominanceCounter()
            get_kernel(name).skyline(pts, counter=counter)
            assert counter.tests > 0, name


class TestFilterSurvivors:
    @pytest.mark.parametrize("kernel", list(KERNEL_NAMES))
    def test_pruning_is_exact(self, kernel):
        pts = _rng(6).random((500, 4))
        filters = compute_filter_points(pts, k=16, sample=128)
        assert filters.shape[0] <= 16
        alive = get_kernel(kernel).filter_survivors(filters, pts)
        # No skyline member may be pruned, and pruning must bite.
        assert alive[skyline_numpy(pts)].all()
        assert not alive.all()

    def test_backends_agree_and_count(self):
        pts = _rng(7).random((400, 5))
        filters = compute_filter_points(pts, k=8, sample=200)
        masks = {}
        for name in KERNEL_NAMES:
            counter = DominanceCounter()
            masks[name] = get_kernel(name).filter_survivors(
                filters, pts, counter=counter
            )
            assert counter.tests == filters.shape[0] * pts.shape[0]
        assert np.array_equal(masks["scalar"], masks["block"])

    def test_empty_filter_set_prunes_nothing(self):
        pts = _rng(8).random((30, 3))
        filters = compute_filter_points(pts, k=0)
        for name in KERNEL_NAMES:
            assert get_kernel(name).filter_survivors(filters, pts).all()


class TestFilterSelection:
    def test_deterministic_and_ranked(self):
        pts = _rng(9).random((1000, 4))
        a = compute_filter_points(pts, k=12, sample=256, seed=3)
        b = compute_filter_points(pts, k=12, sample=256, seed=3)
        assert np.array_equal(a, b)

    def test_filters_are_actual_data_rows(self):
        pts = _rng(10).random((600, 3))
        filters = compute_filter_points(pts, k=8, sample=100)
        for row in filters:
            assert (pts == row).all(axis=1).any()

    @pytest.mark.parametrize("score", ["volume", "entropy"])
    def test_scores_accepted(self, score):
        pts = _rng(11).random((200, 3))
        filters = compute_filter_points(pts, k=4, score=score)
        assert 0 < filters.shape[0] <= 4

    def test_validation(self):
        pts = _rng(12).random((10, 2))
        with pytest.raises(ValueError):
            compute_filter_points(pts, k=-1)
        with pytest.raises(ValueError):
            compute_filter_points(pts, k=4, sample=0)
        with pytest.raises(ValueError):
            compute_filter_points(pts, k=4, score="mass")
