"""The perf-trajectory suite behind ``repro bench``."""

import json

import pytest

from repro.bench.perf import SCHEMA_VERSION, perf_trajectory, render_trajectory


@pytest.fixture(scope="module")
def record():
    return perf_trajectory(quick=True)


class TestRecord:
    def test_schema_and_identity(self, record):
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["suite"] == "repro-bench"
        assert record["quick"] is True
        assert record["executor"] == "serial"
        assert record["suite_wall_s"] > 0

    def test_engine_covers_every_scheme(self, record):
        methods = [row["method"] for row in record["engine"]]
        assert methods == ["dim", "grid", "angle"]
        for row in record["engine"]:
            assert row["n"] == 1_500 and row["d"] == 4
            assert row["global_skyline"] > 0
            assert "trace_summary" not in row

    def test_serving_latencies_present(self, record):
        serving = record["serving"]
        for key in (
            "cold_skyline_s", "warm_cache_hit_s",
            "insert_requery_s", "cold_skyband_s",
        ):
            assert serving[key] >= 0
        assert serving["skyline_size"] > 0
        assert serving["cache"]["hits"] >= 1  # the warm repetitions hit

    def test_embedded_metrics_snapshot(self, record):
        metrics = record["metrics"]
        assert set(metrics) == {"counters", "gauges", "histograms"}
        # The serving phase of the suite itself generates serve traffic.
        assert metrics["counters"]["serve.requests"] >= 1
        assert metrics["counters"]["serve.cache.hits"] >= 1
        assert metrics["histograms"]["serve.latency_s"]["count"] >= 1

    def test_json_serialisable(self, record):
        encoded = json.dumps(record, allow_nan=False)
        assert json.loads(encoded)["schema_version"] == SCHEMA_VERSION


class TestRender:
    def test_render_mentions_every_metric(self, record):
        text = render_trajectory(record)
        assert "perf trajectory" in text
        for token in ("angle", "cold_skyline_s", "warm_cache_hit_s",
                      "insert_requery_s", "cold_skyband_s"):
            assert token in text
