"""The serve path: cache, invalidation, coalescing, shedding, deadlines."""

import threading

import numpy as np
import pytest

from repro.observability.metrics import get_metrics
from repro.observability.tracing import Tracer, set_tracer
from repro.serving.queries import QuerySpec, evaluate
from repro.serving.service import (
    QueryResponse,
    ServeConfig,
    ServiceOverloadedError,
    SkylineService,
    UnknownDatasetError,
)


class FakeClock:
    """Deterministic monotonic time: each reading advances by ``step``."""

    def __init__(self, step=0.0):
        self.now = 0.0
        self.step = step

    def monotonic(self):
        self.now += self.step
        return self.now

    def sleep(self, seconds):
        self.now += seconds


def _points(n=100, d=3, seed=0):
    return np.random.default_rng(seed).random((n, d)) + 0.01


def _service(config=None, *, clock=None, n=100):
    service = SkylineService(config, clock=clock)
    service.register("qws", _points(n))
    return service


def counter(name):
    return get_metrics().counter(name).value


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"max_queue": -1},
            {"cache_entries": -1},
            {"default_deadline_s": 0.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SkylineService(ServeConfig(**kwargs))


class TestCachePath:
    def test_miss_then_hit(self):
        service = _service()
        spec = QuerySpec(dataset="qws")
        first = service.query(spec)
        second = service.query(spec)
        assert not first.cache_hit and second.cache_hit
        assert first.ids == second.ids
        assert first.generation == second.generation == 1
        assert counter("serve.cache.misses") == 1
        assert counter("serve.cache.hits") == 1
        assert counter("serve.computes") == 1

    def test_mutation_invalidates_by_generation(self):
        service = _service()
        spec = QuerySpec(dataset="qws")
        before = service.query(spec)
        _, gen = service.insert("qws", [0.001, 0.001, 0.001])
        after = service.query(spec)
        assert gen == 2
        assert not after.cache_hit
        assert after.generation == 2
        assert after.ids != before.ids
        assert counter("serve.mutations") == 1

    def test_distinct_params_cached_separately(self):
        service = _service()
        a = service.query(QuerySpec(dataset="qws", kind="skyband", k=2))
        b = service.query(QuerySpec(dataset="qws", kind="skyband", k=3))
        assert not a.cache_hit and not b.cache_hit
        assert counter("serve.computes") == 2

    def test_each_kind_matches_ground_truth(self):
        service = _service()
        snap = service.store("qws").snapshot()
        specs = [
            QuerySpec(dataset="qws"),
            QuerySpec(dataset="qws", kind="skyband", k=3),
            QuerySpec(
                dataset="qws", kind="constrained",
                lower=(0.1, 0.1, 0.1), upper=(0.8, 0.8, 0.8),
            ),
            QuerySpec(dataset="qws", kind="subspace", dims=(0, 2)),
        ]
        for spec in specs:
            response = service.query(spec)
            assert response.ids == evaluate(spec, snap.ids, snap.rows)
            assert response.generation == snap.generation

    def test_unknown_dataset_raises(self):
        service = _service()
        with pytest.raises(UnknownDatasetError):
            service.query(QuerySpec(dataset="nope"))


class TestShedding:
    def _saturate(self, service):
        assert service._admission.acquire(blocking=False)
        return lambda: service._admission.release()

    def test_overload_without_stale_answer_is_rejected(self):
        service = _service(ServeConfig(max_inflight=1, max_queue=0,
                                       stale_on_overload=False))
        release = self._saturate(service)
        try:
            with pytest.raises(ServiceOverloadedError) as exc:
                service.query(QuerySpec(dataset="qws"))
            assert exc.value.reason == "overload"
            assert counter("serve.shed") == 1
        finally:
            release()

    def test_overload_with_cold_cache_is_rejected_even_with_stale_on(self):
        service = _service(ServeConfig(max_inflight=1, max_queue=0))
        release = self._saturate(service)
        try:
            with pytest.raises(ServiceOverloadedError):
                service.query(QuerySpec(dataset="qws"))
        finally:
            release()

    def test_overload_serves_degraded_stale_answer(self):
        service = _service(ServeConfig(max_inflight=1, max_queue=0))
        spec = QuerySpec(dataset="qws")
        warm = service.query(spec)  # populate generation 1
        service.insert("qws", [0.001, 0.001, 0.001])
        release = self._saturate(service)
        try:
            shed = service.query(spec)
        finally:
            release()
        assert shed.degraded and shed.status == "degraded"
        assert shed.cache_hit
        assert shed.generation == 1  # stale: pre-mutation generation
        assert shed.ids == warm.ids
        assert counter("serve.shed") == 1
        assert counter("serve.degraded") == 1

    def test_stale_answer_is_newest_cached_generation(self):
        service = _service(ServeConfig(max_inflight=1, max_queue=0))
        spec = QuerySpec(dataset="qws")
        service.query(spec)
        service.insert("qws", [0.001, 0.001, 0.001])
        newer = service.query(spec)  # caches generation 2
        service.insert("qws", [0.002, 0.001, 0.001])
        release = self._saturate(service)
        try:
            shed = service.query(spec)
        finally:
            release()
        assert shed.generation == 2
        assert shed.ids == newer.ids


class TestDeadlines:
    def test_expired_deadline_counts_deadline_exceeded(self):
        # Every clock reading advances by one second: the deadline is
        # already spent when admission re-checks it, without real waiting.
        service = _service(
            ServeConfig(max_inflight=1, max_queue=4, stale_on_overload=False),
            clock=FakeClock(step=1.0),
        )
        release = TestShedding()._saturate(service)
        try:
            with pytest.raises(ServiceOverloadedError) as exc:
                service.query(QuerySpec(dataset="qws"), deadline_s=0.5)
            assert exc.value.reason == "deadline"
            assert counter("serve.deadline_exceeded") == 1
            assert counter("serve.shed") == 1
        finally:
            release()

    def test_default_deadline_from_config(self):
        service = _service(
            ServeConfig(max_inflight=1, max_queue=4,
                        stale_on_overload=False, default_deadline_s=0.5),
            clock=FakeClock(step=1.0),
        )
        release = TestShedding()._saturate(service)
        try:
            with pytest.raises(ServiceOverloadedError) as exc:
                service.query(QuerySpec(dataset="qws"))
            assert exc.value.reason == "deadline"
        finally:
            release()

    def test_generous_deadline_answers_normally(self):
        service = _service()
        response = service.query(QuerySpec(dataset="qws"), deadline_s=30.0)
        assert response.status == "ok"
        assert counter("serve.deadline_exceeded") == 0


class TestCoalescing:
    def test_duplicate_inflight_queries_share_one_compute(self):
        tracer = Tracer(keep_spans=True)
        set_tracer(tracer)
        service = _service(ServeConfig(max_inflight=8, max_queue=8))
        store = service.store("qws")
        spec = QuerySpec(dataset="qws")

        gate = threading.Event()
        entered = threading.Event()
        original = store.skyline_snapshot

        def gated_snapshot():
            entered.set()
            assert gate.wait(timeout=10)
            return original()

        store.skyline_snapshot = gated_snapshot
        responses = []
        errors = []

        def worker():
            try:
                responses.append(service.query(spec))
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        leader = threads[0]
        leader.start()
        assert entered.wait(timeout=10)  # the leader owns the flight
        for t in threads[1:]:
            t.start()
        # Wait until every follower has joined the flight, then open the gate.
        deadline = threading.Event()
        for _ in range(200):
            with service._lock:
                flights = list(service._flights.values())
            if flights and flights[0].requests == 4:
                break
            deadline.wait(0.01)
        gate.set()
        for t in threads:
            t.join(timeout=10)
        store.skyline_snapshot = original

        assert not errors
        assert len(responses) == 4
        assert len({tuple(r.ids) for r in responses}) == 1
        assert sum(1 for r in responses if not r.coalesced) == 1
        assert sum(1 for r in responses if r.coalesced) == 3
        assert counter("serve.computes") == 1
        assert counter("serve.coalesced") == 3

        # Acceptance: one serve.compute span, >1 serve.request spans, and
        # the compute span records how many requests it answered.
        finished = tracer.finished
        compute = [s for s in finished if s.name == "serve.compute"]
        requests = [s for s in finished if s.name == "serve.request"]
        assert len(compute) == 1
        assert len(requests) == 4
        assert compute[0].attrs["requests"] == 4
        assert compute[0].parent_id in {s.span_id for s in requests}

    def test_coalesced_leader_error_propagates_to_followers(self):
        service = _service(ServeConfig(max_inflight=8, max_queue=8))
        store = service.store("qws")
        spec = QuerySpec(dataset="qws")
        gate = threading.Event()
        entered = threading.Event()

        def exploding_snapshot():
            entered.set()
            assert gate.wait(timeout=10)
            raise RuntimeError("partition state corrupted")

        original = store.skyline_snapshot
        store.skyline_snapshot = exploding_snapshot
        outcomes = []

        def worker():
            try:
                outcomes.append(service.query(spec))
            except RuntimeError as exc:
                outcomes.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        threads[0].start()
        assert entered.wait(timeout=10)
        threads[1].start()
        for _ in range(200):
            with service._lock:
                flights = list(service._flights.values())
            if flights and flights[0].requests == 2:
                break
            threading.Event().wait(0.01)
        gate.set()
        for t in threads:
            t.join(timeout=10)
        store.skyline_snapshot = original
        assert outcomes == ["partition state corrupted"] * 2


class TestStats:
    def test_stats_shape(self):
        service = _service()
        service.query(QuerySpec(dataset="qws"))
        stats = service.stats()
        assert stats["datasets"]["qws"]["generation"] == 1
        assert stats["datasets"]["qws"]["size"] == 100
        assert stats["queued"] == 0
        assert stats["inflight_computes"] == 0
        assert stats["counters"]["serve.requests"] == 1
        assert stats["cache"]["entries"] == 1

    def test_register_replaces_and_counts_datasets(self):
        service = _service()
        service.register("other", _points(10, seed=3))
        assert service.datasets() == ["other", "qws"]
        assert get_metrics().gauge("serve.datasets").value == 2
        service.register("qws", _points(20, seed=4))
        assert len(service.store("qws")) == 20

    def test_response_to_dict_round_trip(self):
        response = QueryResponse(
            dataset="qws", kind="skyline", ids=[1, 2], generation=3,
            cache_hit=True, latency_s=0.25,
        )
        record = response.to_dict()
        assert record["ids"] == [1, 2]
        assert record["generation"] == 3
        assert record["cache_hit"] is True
        assert record["status"] == "ok"
