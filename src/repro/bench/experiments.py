"""One driver per table/figure of the paper's evaluation (§V–§VI).

Each function regenerates the corresponding figure's data as a
:class:`~repro.bench.reporting.Table` whose rows/series mirror what the
paper plots.  Absolute seconds come from the deterministic cluster
simulation (DESIGN.md §5 — a 2012 Hadoop testbed cannot be reproduced
bit-for-bit); the reproduction target is the *shape*: method ordering,
speedup factors, saturation behaviour, optimality ordering.

Figure index (see DESIGN.md §4):

* :func:`figure5`  — processing time vs dimension (a: N=1,000, b: N=100,000)
* :func:`figure6`  — map/reduce breakdown vs server count (MR-Angle)
* :func:`figure7`  — local skyline optimality vs dimension
* :func:`headline` — the §V-B 1.7× / 2.3× speedup claims
* :func:`theory`   — §IV Theorems 1–2, closed forms vs Monte-Carlo
* :func:`ablations` — design-choice studies (DESIGN.md §4 last row)
* :func:`stragglers` — robustness under stragglers / speculative execution
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import (
    DEFAULT_CLUSTER,
    DatasetCache,
    default_cache,
    run_point,
    sweep,
)
from repro.bench.reporting import Table
from repro.core.dominance_ability import (
    delta_dominance,
    delta_lower_bound,
    dominance_ability_angle,
    dominance_ability_grid,
    empirical_dominance_ability,
)
from repro.core.mr_skyline import run_mr_skyline
from repro.core.optimality import optimality_of_result
from repro.core.partitioning import AngularPartitioner, load_imbalance
from repro.mapreduce.cluster import ClusterSpec

__all__ = [
    "PAPER_DIMS",
    "PAPER_METHODS",
    "figure5",
    "figure6",
    "figure7",
    "headline",
    "stragglers",
    "theory",
    "ablations",
]

#: The paper sweeps attribute dimensionality 2..10 in steps of 2.
PAPER_DIMS: tuple[int, ...] = (2, 4, 6, 8, 10)

#: Method order used in every figure legend.
PAPER_METHODS: tuple[str, ...] = ("dim", "grid", "angle")

_METHOD_LABEL = {"dim": "MR-Dim", "grid": "MR-Grid", "angle": "MR-Angle"}


def _attach_trace_meta(table: Table, records) -> None:
    """Store per-record trace summaries in ``table.meta`` (traced runs only).

    Each entry keys the cell (method, n, d) and carries the per-phase
    breakdown from :func:`repro.observability.report.summarize_spans`, so a
    ``Table.to_json()`` export of a traced benchmark includes where the
    time went, not just the totals.
    """
    summaries = [
        {"method": r.method, "n": r.n, "d": r.d, **r.trace_summary}
        for r in records
        if r.trace_summary is not None
    ]
    if summaries:
        table.meta["trace_summaries"] = summaries


def _attach_engine_meta(table: Table, records) -> None:
    """Record the execution policy in ``table.meta`` (flows to ``to_json``).

    Tables compare simulated cluster seconds, which must not silently mix
    engine backends — ``meta["engine"]`` makes the executor and chain mode
    of every run auditable in exports.
    """
    records = list(records)
    if not records:
        return
    executors = sorted({r.executor for r in records})
    pipelined = sorted({r.pipelined for r in records})
    table.meta["engine"] = {
        "executor": executors[0] if len(executors) == 1 else executors,
        "pipelined": pipelined[0] if len(pipelined) == 1 else pipelined,
    }


def figure5(
    n: int,
    *,
    dims: Sequence[int] = PAPER_DIMS,
    methods: Sequence[str] = PAPER_METHODS,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    cache: DatasetCache | None = None,
    executor: str | None = None,
    pipelined: bool = False,
) -> Table:
    """Figure 5: processing time vs dimension for the three methods.

    ``n=1_000`` reproduces Fig. 5(a), ``n=100_000`` Fig. 5(b).
    """
    records = sweep(
        methods,
        n,
        dims,
        cluster=cluster,
        cache=cache,
        executor=executor,
        pipelined=pipelined,
    )
    sub = "a" if n <= 10_000 else "b"
    table = Table(
        title=f"Figure 5({sub}): processing time (s) vs dimension, N={n:,}",
        columns=["dimension"] + [_METHOD_LABEL.get(m, m) for m in methods],
        precision=2,
    )
    for d in dims:
        row: list = [d]
        for method in methods:
            rec = next(r for r in records if r.d == d and r.method == method)
            row.append(rec.sim_total_s)
        table.add_row(*row)
    table.add_note(
        f"simulated {cluster.num_nodes}-server cluster "
        f"(partitions = 2 x servers); lower is better"
    )
    _attach_trace_meta(table, records)
    _attach_engine_meta(table, records)
    return table


def figure6(
    *,
    n: int = 100_000,
    d: int = 10,
    node_counts: Sequence[int] = (4, 8, 12, 16, 20, 24, 28, 32),
    base_cluster: ClusterSpec = DEFAULT_CLUSTER,
    cache: DatasetCache | None = None,
    include_tree_merge: bool = True,
    executor: str | None = None,
    pipelined: bool = False,
) -> Table:
    """Figure 6: MR-Angle map/reduce time breakdown vs server count.

    The pipeline is executed once with ``partitions = 2 × max(servers)``
    (the paper's partition rule applied to the sweep's largest cluster — a
    fixed task decomposition, as one provisions a scalability study), then
    replayed on simulated clusters of each size.  Scaling partitions *with*
    the server count instead is available as an ablation
    (:func:`ablations`); it inflates the union of local skylines and with
    it the serial merge stage, washing out the speedup.
    """
    cache = cache or default_cache()
    matrix = cache.matrix(n, d)
    partitions = 2 * max(node_counts)
    result = run_mr_skyline(
        matrix,
        method="angle",
        num_workers=max(node_counts),
        num_partitions=partitions,
        executor=executor,
        pipelined=pipelined,
    )
    tree_result = None
    if include_tree_merge:
        # The tree merge is data-dependently chained, so it cannot pipeline.
        tree_result = run_mr_skyline(
            matrix,
            method="angle",
            num_workers=max(node_counts),
            num_partitions=partitions,
            merge_strategy="tree",
            executor=executor,
        )
    columns = ["servers", "map_time_s", "reduce_time_s", "total_s"]
    if tree_result is not None:
        columns.append("total_tree_merge_s")
    table = Table(
        title=(
            f"Figure 6: MR-Angle processing-time breakdown vs servers "
            f"(N={n:,}, d={d}, {partitions} partitions)"
        ),
        columns=columns,
        precision=2,
    )
    for nodes in node_counts:
        cluster = base_cluster.scaled(num_nodes=nodes)
        sim = result.simulate(cluster)
        row = [nodes, sim.map_time_s, sim.reduce_time_s, sim.total_s]
        if tree_result is not None:
            row.append(tree_result.simulate(cluster).total_s)
        table.add_row(*row)
    if pipelined:
        table.add_note(
            "pipelined chain: total_s models per-partition job overlap and "
            "can undercut map_time + reduce_time"
        )
    else:
        table.add_note("sectioned-bar data: total = map_time + reduce_time")
    table.add_note(
        "reduce_time includes the serial global-merge job, the saturation "
        "floor past ~16-24 servers; the tree-merge column is our extension "
        "that parallelises the merge (8-way partial-merge rounds)"
    )
    table.meta["engine"] = {
        "executor": result.executor,
        "pipelined": result.pipelined,
    }
    return table


def figure7(
    n: int,
    *,
    dims: Sequence[int] = PAPER_DIMS,
    methods: Sequence[str] = PAPER_METHODS,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    cache: DatasetCache | None = None,
    include_equal_width: bool = True,
    executor: str | None = None,
    pipelined: bool = False,
) -> Table:
    """Figure 7: local skyline optimality (Eq. 5) vs dimension.

    ``n=1_000`` reproduces Fig. 7(a), ``n=100_000`` Fig. 7(b).

    A fourth series shows MR-Angle with the paper-literal *equal-width*
    sector boundaries: it reproduces the paper's optimality magnitudes
    (maximum ≈ 0.61 at N=1,000) at the cost of load balance, whereas the
    default quantile sectors trade some optimality for the balance that
    wins Figures 5 and 6 (see EXPERIMENTS.md).
    """
    records = list(
        sweep(
            methods,
            n,
            dims,
            cluster=cluster,
            cache=cache,
            executor=executor,
            pipelined=pipelined,
        )
    )
    sub = "a" if n <= 10_000 else "b"
    columns = ["dimension"] + [_METHOD_LABEL.get(m, m) for m in methods]
    if include_equal_width:
        columns.append("MR-Angle(eq-width)")
    table = Table(
        title=f"Figure 7({sub}): local skyline optimality vs dimension, N={n:,}",
        columns=columns,
        precision=3,
    )
    for d in dims:
        row: list = [d]
        for method in methods:
            rec = next(r for r in records if r.d == d and r.method == method)
            row.append(rec.optimality)
        if include_equal_width:
            rec = run_point(
                "angle",
                n,
                d,
                cluster=cluster,
                cache=cache,
                partitioner_kwargs={"bins": "equal-width"},
                executor=executor,
                pipelined=pipelined,
            )
            records.append(rec)
            row.append(rec.optimality)
        table.add_row(*row)
    table.add_note("fraction of local skyline services that are globally optimal")
    _attach_trace_meta(table, records)
    _attach_engine_meta(table, records)
    return table


def headline(
    *,
    n: int = 100_000,
    d: int = 10,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    cache: DatasetCache | None = None,
    executor: str | None = None,
    pipelined: bool = False,
) -> Table:
    """§V-B headline: MR-Angle is 1.7× / 2.3× faster than MR-Grid / MR-Dim
    at N=100,000, d=10."""
    records = {
        m: run_point(
            m,
            n,
            d,
            cluster=cluster,
            cache=cache,
            executor=executor,
            pipelined=pipelined,
        )
        for m in PAPER_METHODS
    }
    angle = records["angle"].sim_total_s
    table = Table(
        title=f"Headline speedups at N={n:,}, d={d} (paper: grid 1.7x, dim 2.3x)",
        columns=["method", "sim_total_s", "speedup_vs_angle", "dominance_tests"],
        precision=2,
    )
    for m in PAPER_METHODS:
        rec = records[m]
        table.add_row(
            _METHOD_LABEL[m],
            rec.sim_total_s,
            rec.sim_total_s / angle if angle > 0 else float("nan"),
            rec.dominance_tests,
        )
    _attach_trace_meta(table, records.values())
    _attach_engine_meta(table, records.values())
    return table


def theory(
    *,
    L: float = 1.0,
    grid_points: int = 9,
    mc_samples: int = 200_000,
    seed: int = 7,
) -> Table:
    """§IV: dominance-ability closed forms (Eq. 3–4) vs Monte-Carlo areas.

    For points ``(x, y)`` with ``y ≤ x/2`` (the paper's premise) in the
    ``[0, 2L]²`` square split into 4 partitions per scheme, we report the
    closed-form ``D_angle``, ``D_grid``, exact ΔD, Theorem 2's lower bound,
    and a Monte-Carlo estimate of ``D_angle`` under the implemented angular
    partitioner.
    """
    rng = np.random.default_rng(seed)
    sample = rng.random((mc_samples, 2)) * 2 * L
    # The paper's geometry: four equal-AREA sectors of the square, bounded
    # by the lines y = x/2, y = x, y = 2x (each sector has area L²) — not
    # equal-angle sectors.  Theorem 1's premise "y ≤ x/2" names exactly the
    # first of these sectors.
    partitioner = AngularPartitioner(
        4, boundaries=[np.arctan([0.5, 1.0, 2.0])]
    ).fit(sample)
    table = Table(
        title="Section IV: dominance ability, closed form vs Monte-Carlo",
        columns=[
            "x",
            "y",
            "D_angle_eq3",
            "D_grid",
            "delta_exact",
            "delta_bound_eq4",
            "bound_holds",
            "D_angle_mc",
        ],
        precision=4,
    )
    xs = np.linspace(0.1 * L, 0.9 * L, grid_points)
    for x in xs:
        y = x / 4.0  # inside the premise y <= x/2
        d_angle = dominance_ability_angle(x, y, L)
        d_grid = dominance_ability_grid(x, y, L)
        delta = delta_dominance(x, y, L)
        bound = delta_lower_bound(x, L)
        emp = empirical_dominance_ability(
            np.array([x, y]), sample, partitioner
        )
        table.add_row(
            float(x),
            float(y),
            d_angle,
            d_grid,
            delta,
            bound,
            delta >= bound - 1e-12,
            emp.ability,
        )
    table.add_note(
        "closed forms follow the paper's 4-partition geometry; the "
        "Monte-Carlo column uses the implemented equal-width angular "
        "partitioner over a uniform square"
    )
    return table


def stragglers(
    *,
    n: int = 20_000,
    d: int = 8,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    cache: DatasetCache | None = None,
) -> Table:
    """Robustness study: straggling tasks and speculative execution.

    Not a paper figure — Hadoop 0.20's speculative execution was active in
    any real deployment of the paper's experiments, so this table shows how
    the MR-Angle pipeline's simulated times degrade under deterministic
    straggler injection and how much speculation recovers.
    """
    from repro.mapreduce.simulation import (
        StragglerSpec,
        simulate_job_with_stragglers,
    )

    cache = cache or default_cache()
    matrix = cache.matrix(n, d)
    result = run_mr_skyline(matrix, method="angle", num_workers=cluster.num_nodes)
    table = Table(
        title=f"Stragglers & speculative execution (MR-Angle, N={n:,}, d={d})",
        columns=[
            "straggler_prob",
            "slowdown",
            "speculative",
            "total_s",
            "overhead_vs_clean",
        ],
        precision=2,
    )
    clean = sum(
        simulate_job_with_stragglers(r, cluster, StragglerSpec(probability=0.0)).total_s
        for r in result.chain.results
    )
    for prob in (0.0, 0.1, 0.3):
        for speculative in (False, True):
            if prob == 0.0 and speculative:
                continue
            spec = StragglerSpec(
                probability=prob, slowdown=8.0, speculative=speculative, seed=13
            )
            total = sum(
                simulate_job_with_stragglers(r, cluster, spec).total_s
                for r in result.chain.results
            )
            table.add_row(prob, 8.0, speculative, total, total / clean)
    table.add_note("slowdown x8 per straggling task; backup at 1.5x median")
    return table


def ablations(
    *,
    n: int = 10_000,
    d: int = 6,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    cache: DatasetCache | None = None,
) -> Table:
    """Design-choice studies called out in DESIGN.md §4.

    Rows: partition-count rule (1×/2×/4× workers), angular binning mode,
    map-side combiner, bounded BNL windows, and the random-partitioning
    baseline.
    """
    cache = cache or default_cache()
    matrix = cache.matrix(n, d)
    nodes = cluster.num_nodes
    table = Table(
        title=f"Ablations (N={n:,}, d={d}, {nodes} servers)",
        columns=[
            "variant",
            "partitions",
            "sim_total_s",
            "optimality",
            "dominance_tests",
            "imbalance",
        ],
        precision=3,
    )

    def row(label: str, **kwargs) -> None:
        result = run_mr_skyline(matrix, num_workers=nodes, **kwargs)
        sim = result.simulate(cluster)
        opt = optimality_of_result(result).optimality
        imb = load_imbalance(result.partition_ids, result.num_partitions)
        table.add_row(
            label,
            result.num_partitions,
            sim.total_s,
            opt,
            result.dominance_tests,
            imb,
        )

    row("angle (2x workers, quantile)", method="angle")
    row("angle 1x workers", method="angle", num_partitions=nodes)
    row("angle 4x workers", method="angle", num_partitions=4 * nodes)
    row(
        "angle equal-width bins",
        method="angle",
        partitioner=AngularPartitioner(2 * nodes, bins="equal-width"),
    )
    row(
        "angle balanced allocation",
        method="angle",
        partitioner=AngularPartitioner(2 * nodes, allocation="balanced"),
    )
    row("angle + combiner", method="angle", use_combiner=True)
    row("angle window=64", method="angle", window_size=64)
    row(
        "angle tree merge (fan 8)",
        method="angle",
        num_partitions=4 * nodes,
        merge_strategy="tree",
        merge_fan_in=8,
    )
    row("grid (no cell pruning)", method="grid", prune_grid_cells=False)
    row("grid (with pruning)", method="grid")
    row(
        "grid quantile cells",
        method="grid",
        partitioner_kwargs={"bins": "quantile"},
    )
    row(
        "dim quantile slabs",
        method="dim",
        partitioner_kwargs={"bins": "quantile"},
    )
    row("random baseline", method="random")
    return table
