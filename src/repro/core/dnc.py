"""Divide-and-Conquer skyline — after Kung, Luccio & Preparata (JACM 1975)
and the D&C variant of Börzsönyi et al. (ICDE 2001).

The input is lexicographically sorted, which gives the key invariant: *no
point can be dominated by a point that sorts after it* (if ``r`` dominated
``l`` then ``r`` would be ≤ in every dimension with one strict ``<``, hence
lexicographically smaller).  The array is then split in half, skylines of
both halves are computed recursively, and the merge step only needs to
filter the right half's skyline against the left half's.

Included as the third classic baseline algorithm and as another independent
oracle for the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dominance import DominanceCounter, dominated_mask, validate_points

__all__ = ["DNCResult", "dnc_skyline"]

_BASE_CASE = 64


@dataclass(slots=True)
class DNCResult:
    """Outcome of one divide-and-conquer run."""

    indices: np.ndarray
    dominance_tests: int

    def points(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=np.float64)[self.indices]


def _filter_against(
    candidates: np.ndarray, filters: np.ndarray, tests: list[int]
) -> np.ndarray:
    """Mask of ``candidates`` rows NOT dominated by any ``filters`` row."""
    if candidates.shape[0] == 0 or filters.shape[0] == 0:
        return np.ones(candidates.shape[0], dtype=bool)
    le = (filters[:, None, :] <= candidates[None, :, :]).all(axis=2)
    lt = (filters[:, None, :] < candidates[None, :, :]).any(axis=2)
    tests[0] += filters.shape[0] * candidates.shape[0]
    return ~(le & lt).any(axis=0)


def dnc_skyline(
    points: np.ndarray,
    *,
    counter: DominanceCounter | None = None,
) -> DNCResult:
    """Compute the skyline with divide-and-conquer.

    Returns ascending input indices, matching the other algorithms.
    """
    pts = validate_points(points)
    n = pts.shape[0]
    order = np.lexsort(pts.T[::-1])  # lexicographic by dim 0, then 1, ...
    sorted_pts = pts[order]
    tests = [0]

    def recurse(lo: int, hi: int) -> np.ndarray:
        """Skyline of sorted_pts[lo:hi]; returns sorted-array positions."""
        size = hi - lo
        if size <= _BASE_CASE:
            chunk = sorted_pts[lo:hi]
            # D&C is a kernel-independent cross-check algorithm; its base
            # case is the brute-force matrix.  # repro: allow[kernel-seam]
            mask = ~dominated_mask(chunk)
            tests[0] += size * size
            return np.arange(lo, hi, dtype=np.intp)[mask]
        mid = lo + size // 2
        left = recurse(lo, mid)
        right = recurse(mid, hi)
        keep = _filter_against(sorted_pts[right], sorted_pts[left], tests)
        return np.concatenate([left, right[keep]])

    sky_sorted_positions = recurse(0, n) if n else np.empty(0, dtype=np.intp)
    indices = np.sort(order[sky_sorted_positions])
    if counter is not None:
        counter.add(tests[0], "dnc")
    return DNCResult(indices=indices.astype(np.intp), dominance_tests=tests[0])
