"""Standard skyline benchmark workloads (Börzsönyi et al., ICDE 2001).

The skyline literature evaluates on canonical distributions, all on
the unit hypercube with minimisation semantics:

* **independent** — attributes i.i.d. uniform; skyline size Θ(ln^{d−1} n / (d−1)!).
* **correlated** — good in one attribute ⇒ good in the others; tiny skylines.
* **anti-correlated** — good in one attribute ⇒ bad in the others; points
  concentrate around the anti-diagonal plane Σxᵢ ≈ const; huge skylines,
  the stress test.

These complement the QWS-like workload for tests and ablations.  All
generators are seeded and clip to [0, 1] so the hyperspherical transform's
non-negativity requirement always holds.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

__all__ = [
    "independent",
    "correlated",
    "anticorrelated",
    "clustered",
    "generate",
    "Workload",
]

Workload = Literal["independent", "correlated", "anticorrelated", "clustered"]


def independent(n: int, d: int, *, seed: int = 0) -> np.ndarray:
    """i.i.d. uniform points on the unit hypercube."""
    _check(n, d)
    rng = np.random.default_rng(seed)
    return rng.random((n, d))


def correlated(n: int, d: int, *, seed: int = 0, spread: float = 0.1) -> np.ndarray:
    """Points scattered around the main diagonal.

    A common position on the diagonal is drawn per point, then each
    attribute is perturbed with a normal of standard deviation ``spread``.
    """
    _check(n, d)
    if spread < 0:
        raise ValueError(f"spread must be >= 0, got {spread}")
    rng = np.random.default_rng(seed)
    base = rng.random((n, 1))
    noise = rng.normal(0.0, spread, size=(n, d))
    return np.clip(base + noise, 0.0, 1.0)


def anticorrelated(
    n: int, d: int, *, seed: int = 0, spread: float = 0.1
) -> np.ndarray:
    """Points concentrated around the anti-diagonal hyperplane Σxᵢ = d/2.

    Per point: draw a plane offset near d/2 (normal, σ = ``spread``), then
    distribute that total over the attributes with a symmetric Dirichlet —
    attributes within a point are strongly anti-correlated, which maximises
    pairwise incomparability and skyline size.
    """
    _check(n, d)
    if spread < 0:
        raise ValueError(f"spread must be >= 0, got {spread}")
    rng = np.random.default_rng(seed)
    totals = np.clip(rng.normal(d / 2.0, spread * d, size=n), 0.05 * d, 0.95 * d)
    shares = rng.dirichlet(np.ones(d), size=n)
    return np.clip(shares * totals[:, None], 0.0, 1.0)


def clustered(
    n: int,
    d: int,
    *,
    seed: int = 0,
    num_clusters: int = 5,
    spread: float = 0.05,
) -> np.ndarray:
    """Gaussian-mixture clusters on the unit hypercube.

    Models the market structure real registries exhibit: groups of
    similar-quality services (one provider's fleet, one pricing tier).
    Cluster centres are uniform; members are isotropic normals clipped to
    the cube.
    """
    _check(n, d)
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if spread < 0:
        raise ValueError(f"spread must be >= 0, got {spread}")
    rng = np.random.default_rng(seed)
    centres = rng.random((num_clusters, d))
    membership = rng.integers(0, num_clusters, size=n)
    noise = rng.normal(0.0, spread, size=(n, d))
    return np.clip(centres[membership] + noise, 0.0, 1.0)


def generate(workload: Workload, n: int, d: int, *, seed: int = 0) -> np.ndarray:
    """Dispatch by workload name."""
    if workload == "independent":
        return independent(n, d, seed=seed)
    if workload == "correlated":
        return correlated(n, d, seed=seed)
    if workload == "anticorrelated":
        return anticorrelated(n, d, seed=seed)
    if workload == "clustered":
        return clustered(n, d, seed=seed)
    raise ValueError(
        f"unknown workload {workload!r}; choose independent / correlated / "
        f"anticorrelated / clustered"
    )


def _check(n: int, d: int) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
