"""A UDDI-like service registry with dynamic skyline maintenance.

§II of the paper frames the system around a UDDI registry: providers
publish services with QoS measurements, users query for the skyline of a
service category, and the registry absorbs publishes/withdrawals without
global recomputation (the partition-local update of
:class:`repro.core.incremental.IncrementalSkyline`).

This is the domain-facing substrate the examples build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from repro.core.incremental import IncrementalSkyline
from repro.core.partitioning import AngularPartitioner, SpacePartitioner
from repro.services.qos import QoSSchema

__all__ = ["Service", "ServiceRegistry"]


@dataclass(frozen=True, slots=True)
class Service:
    """One published web service."""

    service_id: int
    name: str
    provider: str
    category: str
    qos_raw: np.ndarray  # raw attribute values, schema order

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "qos_raw", np.asarray(self.qos_raw, dtype=np.float64)
        )


class ServiceRegistry:
    """Registry of services grouped by category, with per-category skylines.

    Parameters
    ----------
    schema:
        QoS schema shared by every service.
    dims:
        Number of leading attributes used for skyline evaluation.
    partitioner_factory:
        Builds the per-category space partitioner; defaults to the paper's
        angular scheme with 8 sectors.
    """

    def __init__(
        self,
        schema: QoSSchema,
        *,
        dims: int | None = None,
        partitioner_factory=None,
    ):
        self.schema = schema
        self.dims = dims or len(schema)
        if not 1 <= self.dims <= len(schema):
            raise ValueError(f"dims must be in [1, {len(schema)}], got {self.dims}")
        from repro.services.qos import Polarity

        for attr in schema.subset(self.dims):
            if attr.polarity is Polarity.HIGHER_IS_BETTER and attr.upper_bound is None:
                raise ValueError(
                    f"registry needs a fixed upper_bound on maximisation "
                    f"attribute {attr.name!r} (per-service normalisation "
                    f"cannot use observed maxima)"
                )
        if partitioner_factory is None:
            # Angles need >= 2 dimensions; a 1-attribute registry falls back
            # to dimensional slabs.
            if self.dims >= 2:
                partitioner_factory = lambda: AngularPartitioner(8)  # noqa: E731
            else:
                from repro.core.partitioning import DimensionalPartitioner

                partitioner_factory = lambda: DimensionalPartitioner(8)  # noqa: E731
        self._partitioner_factory = partitioner_factory
        self._services: Dict[int, Service] = {}
        self._categories: Dict[str, Dict[int, int]] = {}  # cat -> {sid: sky_id}
        self._skylines: Dict[str, IncrementalSkyline] = {}
        self._next_id = 1

    # -- publication -------------------------------------------------------------

    def publish(
        self,
        name: str,
        provider: str,
        category: str,
        qos_raw: np.ndarray,
    ) -> Service:
        """Register a service; updates the category skyline incrementally."""
        raw = np.asarray(qos_raw, dtype=np.float64).reshape(-1)
        if raw.shape[0] != len(self.schema):
            raise ValueError(
                f"qos_raw has {raw.shape[0]} values, schema expects "
                f"{len(self.schema)}"
            )
        service = Service(
            service_id=self._next_id,
            name=name,
            provider=provider,
            category=category,
            qos_raw=raw,
        )
        self._next_id += 1
        self._services[service.service_id] = service

        vector = self._minimized(raw)
        sky = self._skylines.get(category)
        if sky is None:
            # Bootstrap the category's partitioner on its first service; the
            # partitioners clamp out-of-range values, so this stays valid as
            # the category grows.  Fit on a tiny box around the first point.
            partitioner: SpacePartitioner = self._partitioner_factory()
            seed = np.vstack([vector, vector * 2 + 1.0])
            partitioner.fit(seed)
            sky = IncrementalSkyline(partitioner)
            self._skylines[category] = sky
            self._categories[category] = {}
        sky_id = sky.insert(vector)
        self._categories[category][service.service_id] = sky_id
        return service

    def withdraw(self, service_id: int) -> None:
        """Remove a service; only its partition's skyline is recomputed."""
        service = self._services.pop(service_id, None)
        if service is None:
            raise KeyError(f"unknown service id {service_id}")
        mapping = self._categories[service.category]
        sky_id = mapping.pop(service_id)
        self._skylines[service.category].remove(sky_id)

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self) -> Iterator[Service]:
        return iter(self._services.values())

    def get(self, service_id: int) -> Service:
        return self._services[service_id]

    def categories(self) -> List[str]:
        return sorted(self._categories)

    def services_in(self, category: str) -> List[Service]:
        return [self._services[sid] for sid in self._categories.get(category, {})]

    def skyline(self, category: str) -> List[Service]:
        """The current skyline services of a category (QoS-optimal set)."""
        sky = self._skylines.get(category)
        if sky is None:
            return []
        optimal_ids = set(sky.global_skyline())
        return [
            self._services[sid]
            for sid, sky_id in sorted(self._categories[category].items())
            if sky_id in optimal_ids
        ]

    # -- internals -----------------------------------------------------------------

    def _minimized(self, raw: np.ndarray) -> np.ndarray:
        sub = self.schema.subset(self.dims)
        return sub.to_minimization(raw[: self.dims].reshape(1, -1))[0]
