"""Cartesian ↔ hyperspherical coordinate transform — Eq. (1) of the paper.

For a service vector ``s = (v1, …, vn)`` the paper defines the radial
coordinate and ``n−1`` angular coordinates::

    r        = sqrt(v1² + … + vn²)
    tan(ø_i) = sqrt(v_{i+1}² + … + v_n²) / v_i        for i = 1 … n−1

i.e. ``ø_i = atan2(‖(v_{i+1}, …, v_n)‖, v_i)``.  For non-negative data
(QoS attributes are non-negative after normalisation) every angle lies in
``[0, π/2]``: 0 when the suffix is all-zero, π/2 when ``v_i`` is 0 but the
suffix is not.  The all-zero vector gets angles 0 by convention.

The inverse transform follows the standard hyperspherical recursion::

    v_1 = r·cos ø_1
    v_k = r·sin ø_1 ⋯ sin ø_{k−1} · cos ø_k     (k = 2 … n−1)
    v_n = r·sin ø_1 ⋯ sin ø_{n−1}

Everything is vectorised over ``(n, d)`` arrays.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import validate_points

__all__ = [
    "to_hyperspherical",
    "from_hyperspherical",
    "angular_coordinates",
    "MAX_ANGLE",
]

#: Upper bound of every angular coordinate for non-negative data.
MAX_ANGLE = np.pi / 2


def to_hyperspherical(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Transform ``(n, d)`` Cartesian points to ``(r, angles)``.

    Returns
    -------
    r:
        ``(n,)`` radial coordinates.
    angles:
        ``(n, d-1)`` angular coordinates, ``angles[:, i] = ø_{i+1}``.

    Raises
    ------
    ValueError
        If any coordinate is negative (the transform's angle range and the
        angular partitioning both assume the non-negative orthant) or if
        ``d < 2`` (no angles exist in 1-D).
    """
    pts = validate_points(points)
    n, d = pts.shape
    if d < 2:
        raise ValueError("hyperspherical transform needs at least 2 dimensions")
    if (pts < 0).any():
        raise ValueError("hyperspherical transform requires non-negative data")

    squares = pts**2
    # suffix_norm[:, i] = sqrt(v_{i+1}² + ... + v_n²)  (0-indexed: dims i+1..d-1)
    reversed_cumsum = np.cumsum(squares[:, ::-1], axis=1)[:, ::-1]
    r = np.sqrt(reversed_cumsum[:, 0])
    suffix = np.sqrt(reversed_cumsum[:, 1:])  # (n, d-1)
    angles = np.arctan2(suffix, pts[:, : d - 1])
    return r, angles


def angular_coordinates(points: np.ndarray) -> np.ndarray:
    """Just the angles (the partitioning only needs those)."""
    return to_hyperspherical(points)[1]


def from_hyperspherical(r: np.ndarray, angles: np.ndarray) -> np.ndarray:
    """Inverse transform: ``(n,)`` radii + ``(n, d-1)`` angles → ``(n, d)``.

    Exact round-trip with :func:`to_hyperspherical` up to floating-point
    error for non-negative inputs.
    """
    r = np.asarray(r, dtype=np.float64)
    angles = np.asarray(angles, dtype=np.float64)
    if angles.ndim == 1:
        angles = angles.reshape(1, -1)
    if r.ndim == 0:
        r = r.reshape(1)
    n, d_minus_1 = angles.shape
    if r.shape != (n,):
        raise ValueError(f"r has shape {r.shape}, expected ({n},)")
    d = d_minus_1 + 1

    out = np.empty((n, d))
    sin_running = np.ones(n)
    for k in range(d_minus_1):
        out[:, k] = r * sin_running * np.cos(angles[:, k])
        sin_running = sin_running * np.sin(angles[:, k])
    out[:, d - 1] = r * sin_running
    return out
