"""Atomic dataset snapshots — the delta-log-truncating checkpoint.

A snapshot file holds one framed JSON object (the same ``length + crc32
+ payload`` frame as a WAL record, see :mod:`repro.serving.durability.wal`)
describing a dataset's full recoverable state at one generation:

``format``
    :data:`SNAPSHOT_FORMAT`, for forward-compatible readers.
``dataset`` / ``generation`` / ``next_id``
    Identity, the mutation counter, and the id-allocation cursor —
    ``next_id`` is what makes post-recovery inserts assign the *same*
    ids the pre-crash store would have.
``ids`` / ``rows``
    Every **live member** (id-aligned), not only the skyline.  The WAL
    holds deltas and the checkpoint holds candidates, but here the
    candidate set is the whole membership: skyband, constrained and
    subspace queries (and future removes) answer from non-skyline
    members, so persisting only the skyline would break the id-for-id
    recovery contract for three of the four query kinds.
``skyline_ids``
    The skyline subset at checkpoint time — recorded for observability
    and the bench's snapshot-size accounting, not consulted by replay.
``wal_seq``
    The last WAL sequence number the snapshot covers; recovery replays
    only frames after it.
``config``
    Store construction parameters (scheme, partitions, kernel, …) so a
    recovered store is built like the original.

Writes are atomic: frame to ``<path>.tmp``, flush + fsync, then
``os.replace`` over the target and fsync the directory.  A crash at any
point leaves either the old snapshot or the new one — never a partial
file under the real name — and the WAL is truncated only *after* the
replace is durable, so "stale snapshot + long tail" is the worst state a
crash can produce, and it is fully recoverable.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict

from repro.serving.durability.wal import HEADER, MAX_RECORD_BYTES

__all__ = ["SNAPSHOT_FORMAT", "SnapshotError", "read_snapshot", "write_snapshot"]

SNAPSHOT_FORMAT = 1


class SnapshotError(RuntimeError):
    """The snapshot file exists but cannot be trusted (bad frame / CRC /
    format).  Unlike a torn WAL tail this is *not* silently skippable:
    the WAL was truncated on the snapshot's promise, so a corrupt
    snapshot means acknowledged data is unrecoverable and the operator
    must know."""


def write_snapshot(path: str, payload: Dict[str, Any]) -> int:
    """Atomically persist ``payload`` to ``path``; returns bytes written.

    tmp-write + fsync + ``os.replace`` + directory fsync: the target
    name always refers to a complete, CRC-verifiable snapshot.
    """
    body = json.dumps(
        {**payload, "format": SNAPSHOT_FORMAT},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    framed = HEADER.pack(len(body), zlib.crc32(body)) + body
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(framed)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")
    return len(framed)


def read_snapshot(path: str) -> Dict[str, Any] | None:
    """The snapshot payload, or ``None`` when no snapshot exists.

    Raises :class:`SnapshotError` on a present-but-unverifiable file —
    see the class docstring for why that is fatal rather than skippable.
    """
    try:
        blob = open(path, "rb").read()
    except FileNotFoundError:
        return None
    if len(blob) < HEADER.size:
        raise SnapshotError(f"snapshot {path} is shorter than its header")
    length, crc = HEADER.unpack_from(blob, 0)
    body = blob[HEADER.size : HEADER.size + length]
    if length > MAX_RECORD_BYTES or len(body) != length:
        raise SnapshotError(f"snapshot {path} declares {length} bytes, has {len(body)}")
    if zlib.crc32(body) != crc:
        raise SnapshotError(f"snapshot {path} failed its CRC check")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"snapshot {path} holds malformed JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SnapshotError(f"snapshot {path} is not an object: {payload!r}")
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"snapshot {path} has format {payload.get('format')!r}, "
            f"expected {SNAPSHOT_FORMAT}"
        )
    return payload


def _fsync_dir(path: str) -> None:
    """Make a rename durable by fsyncing its directory (best-effort on
    platforms whose directories refuse ``os.open`` for reading)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
