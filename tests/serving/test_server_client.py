"""End-to-end sessions: the spawned stdio server and the TCP server.

The stdio test is the same scripted session the CI smoke job runs (one
copy, in :mod:`tests.serving.harness`): load a QWS sample, query, insert,
re-query, and assert the generation bump and the cache miss -> hit
transition, gating on a clean exit code.
"""

import sys
import threading

import numpy as np
import pytest

from repro.serving.client import ServingClient, ServingConnectionError
from repro.serving.server import make_tcp_server
from repro.serving.service import SkylineService

from tests.serving.harness import (
    scripted_session,
    spawn_server,
    subprocess_env,
    tcp_server,
)


class TestStdioSession:
    def test_scripted_smoke_session(self):
        with spawn_server("--max-inflight", "4") as client:
            responses = scripted_session(client, n=300, seed=7)
            after = responses["after"]

            band = client.query("qws", kind="skyband", k=3)
            assert band["ok"] and set(after["ids"]) <= set(band["ids"])

            missing = client.query("never-registered")
            assert missing["ok"] is False

            stats = client.stats()
            assert stats["datasets"]["qws"]["generation"] == 2
            assert stats["counters"]["serve.requests"] >= 4

            assert client.shutdown()["bye"] is True
        assert client.returncode == 0

    def test_invalid_flags_exit_nonzero(self):
        proc_client = spawn_server("--max-inflight", "0")
        proc_client._proc.stdin.close()
        proc_client._proc.stdout.close()
        assert proc_client._proc.wait(timeout=30) == 2

    def test_eof_without_shutdown_exits_cleanly(self):
        client = spawn_server()
        client.close()  # closing stdin ends the session loop
        assert client.returncode == 0

    def test_dead_server_raises_connection_error(self):
        client = spawn_server()
        assert client.ping()["pong"] is True
        client._proc.stdin.close()
        client._proc.stdout.read()  # drain until the process exits
        with pytest.raises(ServingConnectionError):
            client.call(op="ping")
        client._proc.wait(timeout=30)


class TestTcpSession:
    def test_concurrent_tcp_clients_share_the_service(self):
        with tcp_server(SkylineService()) as (host, port):
            with ServingClient.connect(host, port, timeout=10) as a, \
                    ServingClient.connect(host, port, timeout=10) as b:
                points = (np.random.default_rng(0).random((60, 3)) + 0.01)
                a.register("shared", points=points.tolist())
                first = b.query("shared")  # the other connection sees it
                assert first["ok"] and first["generation"] == 1
                second = a.query("shared")
                assert second["cache_hit"], "cache is shared across sessions"

    def test_tcp_shutdown_op_stops_the_server(self):
        server = make_tcp_server(SkylineService())
        host, port = server.server_address
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        with ServingClient.connect(host, port, timeout=10) as client:
            assert client.shutdown()["bye"] is True
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()


@pytest.mark.skipif(sys.platform == "win32", reason="posix pipes")
class TestModuleEntry:
    def test_serve_help_exits_zero(self):
        import subprocess

        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve", "--help"],
            capture_output=True, text=True, env=subprocess_env(), timeout=120,
        )
        assert proc.returncode == 0
        assert "JSON-lines" in proc.stdout
