"""Unit tests for the fault-injection plane and RetryPolicy shapes.

Chaos *behaviour* (does the engine survive?) lives in
``tests/mapreduce/chaos/``; this module pins the building blocks: plan JSON
round-trips and schema rejection, first-match/ bounded-count/ probability
semantics of the injector, the determinism of its seeded draws, and the
backoff arithmetic the retry scheduler runs on.
"""

import pickle

import pytest

from repro.mapreduce import RetryPolicy
from repro.mapreduce.errors import TaskError, TaskTimeoutError
from repro.mapreduce.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    apply_fault,
    get_default_fault_plan,
    set_default_fault_plan,
    stable_rng,
)


class TestFaultRule:
    def test_rejects_unknown_fault(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultRule(fault="explode")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="task kind"):
            FaultRule(fault="crash", kind="shuffle")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(fault="crash", probability=1.5)

    def test_rejects_bad_times(self):
        with pytest.raises(ValueError, match="times"):
            FaultRule(fault="crash", times=0)

    def test_matching_is_by_kind_index_and_job_substring(self):
        rule = FaultRule(fault="crash", kind="map", index=2, job="skyline")
        assert rule.matches("mr-angle-skyline", "map", 2)
        assert not rule.matches("mr-angle-skyline", "reduce", 2)
        assert not rule.matches("mr-angle-skyline", "map", 1)
        assert not rule.matches("wordcount", "map", 2)

    def test_none_fields_match_everything(self):
        rule = FaultRule(fault="slow", slow_factor=2.0)
        assert rule.matches("any-job", "map", 0)
        assert rule.matches("other", "reduce", 9)


class TestFaultPlanJson:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=11,
            rules=(
                FaultRule(fault="crash", kind="map", times=2),
                FaultRule(
                    fault="hang", index=0, hang_s=0.5, cooperative=False
                ),
            ),
            policy=RetryPolicy(max_retries=3, backoff_base_s=0.01, jitter=0.2),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_round_trip_through_file(self, tmp_path):
        plan = FaultPlan(seed=5, rules=(FaultRule(fault="poison", index=1),))
        path = tmp_path / "plan.json"
        plan.dump(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_rejects_unknown_top_level_keys(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 1, "chaos": True})

    def test_rejects_unknown_rule_keys(self):
        with pytest.raises(ValueError, match=r"faults\[0\] has unknown keys"):
            FaultPlan.from_dict({"faults": [{"fault": "crash", "speed": 2}]})

    def test_rejects_unknown_policy_keys(self):
        with pytest.raises(ValueError, match="policy has unknown keys"):
            FaultPlan.from_dict({"faults": [], "policy": {"retries": 1}})

    def test_rejects_invalid_embedded_policy(self):
        with pytest.raises(ValueError, match="max_retries"):
            FaultPlan.from_dict({"policy": {"max_retries": -1}})

    def test_rejects_malformed_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")


class TestFaultInjector:
    def test_crash_once_injects_exactly_once_per_task(self):
        plan = FaultPlan(rules=(FaultRule(fault="crash", kind="map", times=1),))
        injector = FaultInjector(plan)
        assert injector.decide("job", "map", 0, 1) is not None
        assert injector.decide("job", "map", 0, 2) is None
        # A different task index has its own budget.
        assert injector.decide("job", "map", 1, 1) is not None
        # And reduce tasks never matched.
        assert injector.decide("job", "reduce", 0, 1) is None
        assert injector.injected == 2

    def test_crash_n_times(self):
        plan = FaultPlan(rules=(FaultRule(fault="crash", times=2),))
        injector = FaultInjector(plan)
        verdicts = [injector.decide("job", "map", 0, a) for a in (1, 2, 3)]
        assert [v is not None for v in verdicts] == [True, True, False]

    def test_poison_ignores_times(self):
        plan = FaultPlan(rules=(FaultRule(fault="poison", times=1),))
        injector = FaultInjector(plan)
        assert all(
            injector.decide("job", "reduce", 0, a) is not None
            for a in range(1, 6)
        )

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            rules=(
                FaultRule(fault="crash", kind="map", times=1),
                FaultRule(fault="slow", kind="map", slow_factor=3.0, times=None),
            )
        )
        injector = FaultInjector(plan)
        first = injector.decide("job", "map", 0, 1)
        second = injector.decide("job", "map", 0, 2)
        assert first.action == "crash"
        # Rule 0's budget is spent; the attempt falls through to rule 1.
        assert second.action == "slow" and second.slow_factor == 3.0

    def test_probability_draws_are_deterministic(self):
        plan = FaultPlan(
            seed=99, rules=(FaultRule(fault="crash", probability=0.5, times=None),)
        )
        schedules = []
        for _ in range(2):
            injector = FaultInjector(plan)
            schedules.append(
                tuple(
                    injector.decide("job", "map", i, 1) is not None
                    for i in range(64)
                )
            )
        assert schedules[0] == schedules[1]
        # A fair draw hits somewhere strictly between never and always.
        assert 0 < sum(schedules[0]) < 64

    def test_different_seeds_give_different_schedules(self):
        def schedule(seed):
            injector = FaultInjector(
                FaultPlan(
                    seed=seed,
                    rules=(FaultRule(fault="crash", probability=0.5, times=None),),
                )
            )
            return tuple(
                injector.decide("job", "map", i, 1) is not None
                for i in range(64)
            )

        assert schedule(1) != schedule(2)

    def test_event_log_records_schedule(self):
        plan = FaultPlan(rules=(FaultRule(fault="crash", kind="map", times=1),))
        injector = FaultInjector(plan)
        injector.decide("wc", "map", 0, 1)
        injector.decide("wc", "map", 1, 1)
        assert [(e.task_id, e.attempt, e.action) for e in injector.events] == [
            ("map-0", 1, "crash"),
            ("map-1", 1, "crash"),
        ]
        assert injector.injected_by_action() == {"crash": 2}


class TestApplyFault:
    def test_crash_raises_task_error_with_injected_cause(self):
        decision = FaultInjector(
            FaultPlan(rules=(FaultRule(fault="crash"),))
        ).decide("job", "map", 3, 1)
        with pytest.raises(TaskError) as info:
            apply_fault(decision, None, lambda: None)
        assert info.value.task_id == "map-3"
        assert isinstance(info.value.cause, InjectedFault)

    def test_cooperative_hang_observes_the_deadline(self):
        decision = FaultInjector(
            FaultPlan(rules=(FaultRule(fault="hang", hang_s=60.0),))
        ).decide("job", "map", 0, 1)
        # hang_s >= timeout: sleeps only the (tiny) timeout, then times out.
        with pytest.raises(TaskTimeoutError) as info:
            apply_fault(decision, 0.01, lambda: None)
        assert info.value.timeout_s == 0.01

    def test_short_hang_runs_the_body(self):
        decision = FaultInjector(
            FaultPlan(rules=(FaultRule(fault="hang", hang_s=0.001),))
        ).decide("job", "map", 0, 1)
        assert apply_fault(decision, 10.0, lambda x: x + 1, 1) == 2

    def test_slow_returns_the_body_result(self):
        decision = FaultInjector(
            FaultPlan(rules=(FaultRule(fault="slow", slow_factor=1.0, slow_s=0.001),))
        ).decide("job", "map", 0, 1)
        assert apply_fault(decision, None, lambda: "out") == "out"

    def test_decision_is_picklable(self):
        decision = FaultInjector(
            FaultPlan(rules=(FaultRule(fault="crash"),))
        ).decide("job", "reduce", 1, 2)
        clone = pickle.loads(pickle.dumps(decision))
        assert clone == decision


class TestStableRng:
    def test_same_key_same_stream(self):
        a = stable_rng(7, "job", "map-0", 1)
        b = stable_rng(7, "job", "map-0", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_any_key_part_changes_the_stream(self):
        base = stable_rng(7, "job", "map-0", 1).random()
        assert stable_rng(8, "job", "map-0", 1).random() != base
        assert stable_rng(7, "other", "map-0", 1).random() != base
        assert stable_rng(7, "job", "map-1", 1).random() != base
        assert stable_rng(7, "job", "map-0", 2).random() != base


class TestRetryPolicyBackoff:
    def test_pre_jitter_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_retries=9,
            backoff_base_s=1.0,
            backoff_factor=2.0,
            backoff_max_s=5.0,
        )
        assert policy.pre_jitter_backoff_s(2) == 1.0
        assert policy.pre_jitter_backoff_s(3) == 2.0
        assert policy.pre_jitter_backoff_s(4) == 4.0
        assert policy.pre_jitter_backoff_s(5) == 5.0  # capped
        assert policy.pre_jitter_backoff_s(9) == 5.0

    def test_zero_base_means_immediate_retry(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.backoff_s("map-0", 2) == 0.0

    def test_jitter_stays_within_the_band_and_is_deterministic(self):
        policy = RetryPolicy(
            max_retries=4, backoff_base_s=1.0, jitter=0.5, seed=3
        )
        for attempt in (2, 3, 4):
            value = policy.backoff_s("map-0", attempt)
            base = policy.pre_jitter_backoff_s(attempt)
            assert base * 0.5 <= value <= base * 1.5
            assert value == policy.backoff_s("map-0", attempt)

    def test_validate_rejects_shrinking_factor(self):
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5).validate()

    def test_validate_rejects_bad_on_lost(self):
        with pytest.raises(ValueError, match="on_lost"):
            RetryPolicy(on_lost="shrug").validate()


class TestDefaultPlan:
    def test_set_returns_previous_and_clears(self):
        plan = FaultPlan(seed=1)
        assert set_default_fault_plan(plan) is None
        try:
            assert get_default_fault_plan() is plan
        finally:
            assert set_default_fault_plan(None) is plan
        assert get_default_fault_plan() is None
