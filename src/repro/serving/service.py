"""The online skyline query service: admission, coalescing, cache, compute.

One :class:`SkylineService` holds a :class:`~repro.serving.store.SkylineStore`
per registered dataset and answers concurrent queries without rerunning
the batch MapReduce pipeline.  The serve path of every request is::

    request -> admission -> cache -> [coalesce] -> compute

* **Admission control.**  At most ``max_inflight`` requests execute at
  once (a bounded semaphore); up to ``max_queue`` more may wait.  A
  request arriving beyond that capacity is *shed*: it gets the newest
  cached answer for the same query flagged ``degraded=True`` when one
  exists (the PR-4 degrade vocabulary — stale but never wrong), else a
  429-style :class:`ServiceOverloadedError`.
* **Request coalescing.**  Identical in-flight queries (same versioned
  cache key) share one computation: the first request becomes the leader
  and computes; followers wait on its flight and reuse the result — one
  ``serve.compute`` span, many ``serve.request`` spans.
* **Deadlines.**  Per-query deadlines run on the fault-tolerance clock
  (:class:`~repro.mapreduce.faults.MonotonicClock`; tests inject a fake),
  and bound both queue wait and coalesced waits.
* **Observability.**  Serve-path spans (``serve.request`` →
  ``serve.admission`` / ``serve.cache`` / ``serve.compute``), the
  ``serve.*`` counters (requests, cache.hits/misses, shed, coalesced,
  degraded, computes, mutations, deadline_exceeded) and the
  ``serve.latency_s`` histogram all land in the PR-1 observability layer.
  On top of those, every shed/degraded answer emits a structured event
  (:mod:`repro.observability.events`), every finished request feeds the
  multi-window SLO burn tracker (:mod:`repro.observability.slo`), and an
  edge-triggered :class:`~repro.observability.metrics.ThresholdWatch` on
  the per-dataset ``partition.skew.*`` gauges emits ``skew.alert`` events
  — all served live by the ``stats`` / ``health`` / ``slo`` / ``events``
  protocol verbs and rendered by ``repro top``.

Thread-safety: the flight table and queue depth mutate only under
``self._lock``; per-dataset state is guarded by each store's own lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.kernels import KERNEL_NAMES, get_kernel
from repro.mapreduce.executors import Executor
from repro.mapreduce.faults import MonotonicClock
from repro.observability.events import get_events
from repro.observability.metrics import Histogram, get_metrics
from repro.observability.slo import SLOTracker, default_objectives
from repro.observability.tracing import get_tracer
from repro.serving.cache import ResultCache
from repro.serving.queries import QuerySpec, candidate_prune_mask, evaluate
from repro.serving.store import DEFAULT_MR_BULK_THRESHOLD, SkylineStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.durability.manager import DurabilityManager

__all__ = [
    "ServeConfig",
    "ServiceOverloadedError",
    "UnknownDatasetError",
    "QueryResponse",
    "SkylineService",
]


class ServiceOverloadedError(RuntimeError):
    """429-style rejection: over capacity (or past deadline), no stale answer."""

    def __init__(self, message: str, *, reason: str = "overload"):
        super().__init__(message)
        self.reason = reason


class UnknownDatasetError(KeyError):
    """The query named a dataset that was never registered."""


@dataclass(slots=True)
class ServeConfig:
    """Admission-control and cache knobs of one service instance."""

    #: Concurrent computations admitted at once.
    max_inflight: int = 8
    #: Requests allowed to wait for admission beyond ``max_inflight``.
    max_queue: int = 16
    #: Versioned result-cache capacity (entries).
    cache_entries: int = 256
    #: Deadline applied when a query names none (``None`` = unbounded).
    default_deadline_s: float | None = None
    #: Shed path: serve the newest stale cached answer (``degraded=True``)
    #: instead of rejecting, when one exists.
    stale_on_overload: bool = True
    #: Bulk loads at or above this many rows run the MapReduce pipeline.
    mr_bulk_threshold: int = DEFAULT_MR_BULK_THRESHOLD
    #: Workers / executor for MR bulk loads of registered datasets.
    num_workers: int = 2
    executor: str | Executor | None = None
    #: Dominance backend for every registered dataset (``"scalar"`` /
    #: ``"block"``); ``None`` resolves the process default
    #: (``--kernel`` / ``$REPRO_KERNEL``, else ``scalar``).
    kernel: str | None = None
    #: Latency SLO: this fraction of answered requests …
    slo_latency_target: float = 0.95
    #: … must finish within this many seconds.
    slo_latency_threshold_s: float = 0.25
    #: Availability SLO: fraction of requests that must be answered at all
    #: (shed-without-stale and errors count against it).
    slo_availability_target: float = 0.999
    #: A ``partition.skew.*.max_min_ratio`` gauge crossing this bound emits
    #: a ``skew.alert`` event (the re-balancer trigger signal).
    skew_alert_ratio: float = 8.0

    def validate(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.cache_entries < 0:
            raise ValueError(f"cache_entries must be >= 0, got {self.cache_entries}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )
        for name in ("slo_latency_target", "slo_availability_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        if self.slo_latency_threshold_s <= 0:
            raise ValueError(
                f"slo_latency_threshold_s must be > 0, "
                f"got {self.slo_latency_threshold_s}"
            )
        if self.skew_alert_ratio <= 1.0:
            raise ValueError(
                f"skew_alert_ratio must be > 1, got {self.skew_alert_ratio}"
            )
        if self.kernel is not None and self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {', '.join(KERNEL_NAMES)}"
            )


@dataclass(slots=True)
class QueryResponse:
    """One served answer, labelled with the generation it was computed at."""

    dataset: str
    kind: str
    ids: List[int]
    generation: int
    cache_hit: bool = False
    coalesced: bool = False
    degraded: bool = False
    status: str = "ok"
    latency_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dataset": self.dataset,
            "kind": self.kind,
            "ids": list(self.ids),
            "generation": self.generation,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "degraded": self.degraded,
            "status": self.status,
            "latency_s": round(self.latency_s, 9),
        }


class _Flight:
    """One in-flight computation shared by coalesced requests."""

    __slots__ = ("event", "response", "error", "requests")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: QueryResponse | None = None
        self.error: BaseException | None = None
        self.requests = 1


@dataclass(slots=True)
class _Request:
    """Per-request bookkeeping threaded through the serve path."""

    spec: QuerySpec
    span: Any
    start: float
    deadline_s: float | None = None
    status: str = "ok"
    flight: _Flight | None = field(default=None, repr=False)


class SkylineService:
    """Long-running skyline query service over registered datasets."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        clock: Any = None,
        durability: "DurabilityManager | None" = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.config.validate()
        self.durability = durability
        self.clock = clock if clock is not None else MonotonicClock()
        self._lock = threading.RLock()
        self._stores: Dict[str, SkylineStore] = {}
        self._cache = ResultCache(self.config.cache_entries)
        self._flights: Dict[Tuple[Any, ...], _Flight] = {}
        self._queued = 0
        self._admission = threading.BoundedSemaphore(self.config.max_inflight)
        self._started_at = self.clock.monotonic()
        self.slo = SLOTracker(
            default_objectives(
                availability_target=self.config.slo_availability_target,
                latency_threshold_s=self.config.slo_latency_threshold_s,
                latency_target=self.config.slo_latency_target,
            ),
            clock=self.clock,
        )
        # Edge-triggered skew alert: the ROADMAP re-balancer's trigger.  The
        # watch lives on the registry current at construction time; tests
        # that swap registries build their service after the swap.
        self._skew_watch = get_metrics().watch(
            "partition.skew.*.max_min_ratio",
            self.config.skew_alert_ratio,
            self._on_skew_alert,
        )

    def _on_skew_alert(self, gauge: str, value: float, watch: Any) -> None:
        get_events().emit(
            "skew.alert",
            gauge=gauge,
            value=round(value, 4),
            threshold=watch.threshold,
        )

    # -- dataset management -----------------------------------------------------

    def register(
        self,
        name: str,
        points: np.ndarray | None = None,
        *,
        scheme: str = "angle",
        num_partitions: int = 8,
    ) -> int:
        """Create (or replace) a dataset; returns its generation."""
        if not name:
            raise ValueError("dataset name must be non-empty")
        store = SkylineStore(
            name,
            scheme=scheme,
            num_partitions=num_partitions,
            num_workers=self.config.num_workers,
            mr_bulk_threshold=self.config.mr_bulk_threshold,
            executor=self.config.executor,
            kernel=self.config.kernel,
        )
        if self.durability is not None:
            # WAL-before-apply, from the very first byte: the register
            # record (carrying the construction config) lands before the
            # initial load's bulk record, so replay rebuilds the store
            # with the same parameters, then the same data.
            log = self.durability.dataset_log(name)
            store.attach_durability(log)
            log.log_register(store.store_config())
        if points is not None:
            store.bulk_load(points)
        with self._lock:
            replaced = name in self._stores
            self._stores[name] = store
            get_metrics().gauge("serve.datasets").set(len(self._stores))
        if replaced:
            # The fresh store restarts its generation counter, so cached
            # answers of the previous incarnation must not be addressable.
            self._cache.invalidate(name)
        return store.generation

    def adopt_store(self, name: str, store: SkylineStore) -> int:
        """Install an externally-built store (the recovery path) as a
        dataset; returns its generation."""
        with self._lock:
            replaced = name in self._stores
            self._stores[name] = store
            get_metrics().gauge("serve.datasets").set(len(self._stores))
        if replaced:
            self._cache.invalidate(name)
        return store.generation

    def recover_datasets(self) -> List[Any]:
        """Recover every dataset found in the durability directory.

        Runs before the server starts answering: each recovered store is
        adopted under its recorded name, with this service's executor and
        kernel flags overriding the persisted config (a restarted fleet
        member stays homogeneous with its peers).  Returns the
        per-dataset :class:`~repro.serving.durability.recovery.RecoveryReport`
        list (empty when durability is off or the directory is fresh).
        """
        if self.durability is None:
            return []
        from repro.serving.durability.recovery import recover_dataset

        reports = []
        for name in self.durability.dataset_names():
            store, report = recover_dataset(
                self.durability,
                name,
                executor=self.config.executor,
                kernel=self.config.kernel,
            )
            if store is not None:
                self.adopt_store(name, store)
                reports.append(report)
        return reports

    def sync_durability(self) -> None:
        """Flush every WAL to stable storage (shutdown / signal path)."""
        if self.durability is not None:
            self.durability.sync()

    def datasets(self) -> List[str]:
        with self._lock:
            return sorted(self._stores)

    def store(self, name: str) -> SkylineStore:
        with self._lock:
            try:
                return self._stores[name]
            except KeyError:
                raise UnknownDatasetError(name) from None

    # -- mutations --------------------------------------------------------------

    def insert(
        self, dataset: str, point: Sequence[float] | np.ndarray
    ) -> Tuple[int, int]:
        """Insert into a dataset; returns ``(point id, new generation)``."""
        with get_tracer().span("serve.mutation", kind="serve",
                               dataset=dataset, op="insert"):
            result = self.store(dataset).insert(point)
        get_metrics().counter("serve.mutations").inc()
        return result

    def remove(self, dataset: str, point_id: int) -> int:
        """Remove from a dataset; returns the new generation."""
        with get_tracer().span("serve.mutation", kind="serve",
                               dataset=dataset, op="remove"):
            generation = self.store(dataset).remove(point_id)
        get_metrics().counter("serve.mutations").inc()
        return generation

    def bulk_load(self, dataset: str, points: np.ndarray) -> Tuple[List[int], int]:
        """Bulk-insert; returns ``(new point ids, new generation)``."""
        with get_tracer().span("serve.mutation", kind="serve",
                               dataset=dataset, op="bulk_load"):
            result = self.store(dataset).bulk_load(points)
        get_metrics().counter("serve.mutations").inc()
        return result

    # -- the serve path ---------------------------------------------------------

    def query(
        self, spec: QuerySpec, *, deadline_s: float | None = None
    ) -> QueryResponse:
        """Serve one query; raises :class:`ServiceOverloadedError` on shed
        without a stale answer, :class:`UnknownDatasetError` on a bad name."""
        metrics = get_metrics()
        tracer = get_tracer()
        metrics.counter("serve.requests").inc()
        req = _Request(
            spec=spec,
            span=tracer.start_span(
                "serve.request", kind="serve",
                dataset=spec.dataset, query=spec.kind,
            ),
            start=self.clock.monotonic(),
            deadline_s=(
                deadline_s if deadline_s is not None
                else self.config.default_deadline_s
            ),
        )
        try:
            store = self.store(spec.dataset)
            response = self._serve(req, store)
            req.status = response.status
            response.latency_s = self.clock.monotonic() - req.start
            return response
        except BaseException:
            if req.status == "ok":
                req.status = "error"
            raise
        finally:
            latency_s = self.clock.monotonic() - req.start
            metrics.histogram("serve.latency_s").observe(latency_s)
            # SLO accounting: a degraded (stale) answer is still an answer;
            # errors and shed-without-stale burn the availability budget.
            self.slo.record(latency_s, ok=req.status in ("ok", "degraded"))
            req.span.set_attrs(status=req.status)
            tracer.end_span(
                req.span,
                status="ok" if req.status in ("ok", "degraded") else "error",
            )

    # -- serve-path stages ------------------------------------------------------

    def _remaining_s(self, req: _Request) -> float | None:
        """Seconds left before the request's deadline (None = unbounded)."""
        if req.deadline_s is None:
            return None
        return req.deadline_s - (self.clock.monotonic() - req.start)

    def _serve(self, req: _Request, store: SkylineStore) -> QueryResponse:
        if not self._admit(req):
            remaining = self._remaining_s(req)
            reason = (
                "deadline" if remaining is not None and remaining <= 0
                else "overload"
            )
            return self._shed(req, reason)
        try:
            cached = self._check_cache(req, store)
            if cached is not None:
                return cached
            return self._coalesced_compute(req, store)
        finally:
            self._admission.release()

    def _admit(self, req: _Request) -> bool:
        """Take an admission permit; False means over capacity or deadline."""
        tracer = get_tracer()
        span = tracer.start_span("serve.admission", kind="serve", parent=req.span)
        admitted = self._admission.acquire(blocking=False)
        waited = False
        if not admitted:
            with self._lock:
                can_queue = self._queued < self.config.max_queue
                if can_queue:
                    self._queued += 1
            if can_queue:
                waited = True
                remaining = self._remaining_s(req)
                try:
                    if remaining is None:
                        admitted = self._admission.acquire()
                    elif remaining > 0:
                        admitted = self._admission.acquire(timeout=remaining)
                finally:
                    with self._lock:
                        self._queued -= 1
        span.set_attrs(admitted=admitted, queued=waited)
        tracer.end_span(span)
        return admitted

    def _shed(self, req: _Request, reason: str) -> QueryResponse:
        """Over-admission: degraded stale answer when possible, else 429."""
        metrics = get_metrics()
        metrics.counter("serve.shed").inc()
        get_events().emit(
            "serve.shed",
            dataset=req.spec.dataset,
            query=req.spec.kind,
            reason=reason,
        )
        if reason == "deadline":
            metrics.counter("serve.deadline_exceeded").inc()
        if self.config.stale_on_overload:
            stale = self._cache.latest(
                req.spec.dataset, req.spec.kind, req.spec.params_key()
            )
            if stale is not None:
                generation, ids = stale
                metrics.counter("serve.degraded").inc()
                get_events().emit(
                    "serve.degraded",
                    dataset=req.spec.dataset,
                    query=req.spec.kind,
                    reason=reason,
                    stale_generation=generation,
                )
                req.span.set_attrs(degraded=True, shed_reason=reason)
                return QueryResponse(
                    dataset=req.spec.dataset,
                    kind=req.spec.kind,
                    ids=ids,
                    generation=generation,
                    cache_hit=True,
                    degraded=True,
                    status="degraded",
                )
        req.span.set_attrs(shed_reason=reason)
        raise ServiceOverloadedError(
            f"query {req.spec.describe()} shed ({reason}): "
            f"{self.config.max_inflight} in flight, "
            f"{self.config.max_queue} queued, no stale answer cached",
            reason=reason,
        )

    def _check_cache(
        self, req: _Request, store: SkylineStore
    ) -> QueryResponse | None:
        tracer = get_tracer()
        metrics = get_metrics()
        generation = store.generation
        key = req.spec.cache_key(generation)
        span = tracer.start_span("serve.cache", kind="serve", parent=req.span)
        ids = self._cache.get(key)
        hit = ids is not None
        span.set_attrs(hit=hit, generation=generation)
        tracer.end_span(span)
        req.span.set_attrs(cache="hit" if hit else "miss", key=req.spec.describe())
        metrics.counter("serve.cache.hits" if hit else "serve.cache.misses").inc()
        if ids is None:
            return None
        return QueryResponse(
            dataset=req.spec.dataset,
            kind=req.spec.kind,
            ids=ids,
            generation=generation,
            cache_hit=True,
        )

    def _coalesced_compute(
        self, req: _Request, store: SkylineStore
    ) -> QueryResponse:
        """Compute once per (query, generation); identical requests share it."""
        key = req.spec.cache_key(store.generation)
        leader = False
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                flight.requests += 1
        req.flight = flight
        if leader:
            try:
                response = self._compute(req, store, key)
                flight.response = response
                return response
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
        return self._follow(req, flight)

    def _follow(self, req: _Request, flight: _Flight) -> QueryResponse:
        """Wait for the flight leader's result (bounded by the deadline)."""
        metrics = get_metrics()
        metrics.counter("serve.coalesced").inc()
        req.span.set_attrs(coalesced=True)
        remaining = self._remaining_s(req)
        finished = flight.event.wait(timeout=remaining)
        if not finished:
            return self._shed(req, "deadline")
        if flight.error is not None:
            raise flight.error
        assert flight.response is not None
        return replace(flight.response, coalesced=True)

    def _compute(
        self, req: _Request, store: SkylineStore, key: Tuple[Any, ...]
    ) -> QueryResponse:
        metrics = get_metrics()
        tracer = get_tracer()
        metrics.counter("serve.computes").inc()
        span = tracer.start_span(
            "serve.compute", kind="serve", parent=req.span,
            dataset=req.spec.dataset, query=req.spec.kind,
            key=req.spec.describe(),
        )
        status = "ok"
        try:
            if req.spec.kind == "skyline":
                # The amortised path: the incremental structure answers from
                # its per-partition local skylines (one cached BNL merge).
                generation, ids = store.skyline_snapshot()
            else:
                snap = store.snapshot()
                generation = snap.generation
                ids = evaluate(req.spec, snap.ids, snap.rows)
            # The snapshot's generation may be newer than the one the cache
            # key was derived from (a mutation raced in); the result is
            # cached and labelled under the generation actually computed.
            self._cache.put(req.spec.cache_key(generation), ids)
            span.set_attrs(
                generation=generation,
                results=len(ids),
                requests=req.flight.requests if req.flight is not None else 1,
            )
            return QueryResponse(
                dataset=req.spec.dataset,
                kind=req.spec.kind,
                ids=ids,
                generation=generation,
            )
        except BaseException:
            status = "error"
            raise
        finally:
            tracer.end_span(span, status=status)

    # -- cluster shard duty -----------------------------------------------------

    def shard_candidates(
        self,
        spec: QuerySpec,
        *,
        filters: np.ndarray | Sequence[Sequence[float]] | None = None,
        deadline_s: float | None = None,
    ) -> Dict[str, Any]:
        """Answer one fan-out leg of a cluster query (the ``shard_query`` op).

        Runs the normal serve path for ``spec``, joins the resulting ids to
        their coordinate rows over a consistent snapshot, and — when the
        coordinator broadcast ``filters`` (live rows of the *global*
        dataset) — drops every candidate the filter set already refutes
        before it crosses the wire (:func:`~repro.serving.queries.candidate_prune_mask`).

        The serve path and the snapshot are two lock acquisitions, so a
        racing mutation can slip between them; the answer re-runs (bounded)
        until the generations agree, falling back to a direct
        :func:`~repro.serving.queries.evaluate` over the snapshot.  The
        returned ``generation`` is therefore always the generation the ids
        and rows are mutually consistent at.
        """
        metrics = get_metrics()
        response = self.query(spec, deadline_s=deadline_s)
        store = self.store(spec.dataset)
        snap = store.snapshot()
        for _ in range(3):
            if snap.generation == response.generation and not response.degraded:
                break
            response = self.query(spec, deadline_s=deadline_s)
            snap = store.snapshot()
        if snap.generation == response.generation and not response.degraded:
            ids = [int(i) for i in response.ids]
        else:
            ids = evaluate(spec, snap.ids, snap.rows)
        rows = snap.rows_of(ids)
        held = int(snap.ids.shape[0])
        candidates = len(ids)
        if filters is not None:
            flt = np.asarray(filters, dtype=np.float64)
            if flt.size and candidates:
                mask = candidate_prune_mask(
                    spec, rows, flt, kernel=self.config.kernel
                )
                ids = [pid for pid, keep in zip(ids, mask) if keep]
                rows = rows[mask]
        metrics.counter("serve.shard.served").inc()
        metrics.counter("serve.shard.held").inc(held)
        metrics.counter("serve.shard.sent").inc(len(ids))
        metrics.counter("serve.shard.pruned").inc(candidates - len(ids))
        return {
            "ids": ids,
            "rows": [[float(v) for v in row] for row in rows],
            "generation": int(snap.generation),
            "held": held,
            "candidates": candidates,
            "sent": len(ids),
        }

    # -- introspection ----------------------------------------------------------

    def cache_stats(self) -> Dict[str, int]:
        return self._cache.stats()

    def uptime_s(self) -> float:
        return self.clock.monotonic() - self._started_at

    def stats(self) -> Dict[str, Any]:
        """JSON-ready operational snapshot (the protocol's ``stats`` op).

        Everything ``repro top`` renders in one poll: per-dataset
        generation/size, cache and admission state, the ``serve.*``
        counters, the ``serve.*``/``partition.*`` gauges (partition-skew
        above all), and the serve-latency histogram summary.  Counters are
        cumulative; pollers rate them with
        :func:`repro.observability.export.snapshot_delta`.
        """
        snapshot = get_metrics().snapshot()
        with self._lock:
            datasets = {
                name: {
                    "size": len(s),
                    "generation": s.generation,
                    "kernel": s.kernel_name,
                }
                for name, s in sorted(self._stores.items())
            }
            queued = self._queued
            inflight = len(self._flights)
        return {
            "uptime_s": round(self.uptime_s(), 6),
            "kernel": get_kernel(self.config.kernel).name,
            "datasets": datasets,
            "cache": self._cache.stats(),
            "queued": queued,
            "inflight_computes": inflight,
            "counters": {
                name: value
                for name, value in snapshot["counters"].items()
                if name.startswith(("serve.", "prune.", "wal.", "durability."))
            },
            "gauges": {
                name: value
                for name, value in snapshot["gauges"].items()
                if name.startswith(("serve.", "partition.", "durability."))
            },
            "latency": snapshot["histograms"].get(
                "serve.latency_s", Histogram("serve.latency_s").snapshot()
            ),
            "events": get_events().counts(),
        }

    def slo_report(self) -> Dict[str, Any]:
        """Burn-rate evaluation of the service SLOs (the ``slo`` op)."""
        return self.slo.evaluate()

    def health(self) -> Dict[str, Any]:
        """Liveness + burn-driven readiness (the ``health`` op).

        ``healthy`` while every SLO is within budget; a ticket-level burn
        reports ``degraded`` and a page-level burn ``unhealthy`` — the
        states a load balancer or the ``repro top`` header needs, without
        shipping the whole burn report.
        """
        slo_state = self.slo.evaluate()["state"]
        status = {"ok": "healthy", "ticket": "degraded", "page": "unhealthy"}[
            slo_state
        ]
        with self._lock:
            datasets = len(self._stores)
            queued = self._queued
            inflight = len(self._flights)
        return {
            "status": status,
            "slo_state": slo_state,
            "uptime_s": round(self.uptime_s(), 6),
            "datasets": datasets,
            "queued": queued,
            "inflight_computes": inflight,
        }

    def events_tail(
        self,
        n: int | None = 50,
        *,
        kinds: Sequence[str] | None = None,
        since_seq: int | None = None,
    ) -> List[Dict[str, Any]]:
        """Newest structured events as dicts (the ``events`` op)."""
        return [
            event.to_dict()
            for event in get_events().tail(n, kinds=kinds, since_seq=since_seq)
        ]
