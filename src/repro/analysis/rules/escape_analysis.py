"""escape-analysis: mutable state escapes to another thread unguarded.

``lock-discipline`` (single class, single file) catches the *partially*
guarded attribute — written under ``self._lock`` in one method, bare in
another.  This rule catches what it deliberately leaves out: state with
**no** guard at all that nevertheless becomes shared, because a callable
touching it is handed to ``Thread`` / ``Timer`` / ``executor.submit`` /
``run_in_executor``.  Two shapes, both resolved through the flow layer's
call graph:

* a bound method escaping to a thread sink mutates ``self.X`` while the
  class never writes ``X`` under any lock — every write is a potential
  race with the spawning thread;
* a local closure escaping to a sink mutates a free variable of the
  enclosing scope (``results.append(...)``) outside any ``with <lock>:``
  region.

Findings anchor at the hand-off call site — that is where the sharing
decision is made and where a lock (or a queue) belongs.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import Rule, register
from repro.analysis.findings import Finding
from repro.analysis.flow import flow_for_project
from repro.analysis.flow.escape import find_escapes
from repro.analysis.project import Project


@register
class EscapeAnalysisRule(Rule):
    """State crossing a thread boundary needs a lock (or a queue)."""

    id = "escape-analysis"

    def check(self, project: Project) -> Iterator[Finding]:
        analysis = flow_for_project(project)
        for escape in find_escapes(analysis):
            if escape.shape == "attribute":
                detail = (
                    f"{escape.target_qualname} mutates {escape.state_name} "
                    "which is never written under a lock"
                )
            else:
                detail = (
                    f"{escape.target_qualname} mutates free variable "
                    f"{escape.state_name!r} of the enclosing scope with no "
                    "lock held"
                )
            yield self.finding(
                escape.module,
                escape.node,
                f"mutable state escapes to another thread: {detail} "
                "(guard it with a lock or hand off through a queue)",
            )
