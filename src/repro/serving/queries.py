"""Query kinds served by the online skyline service.

Four query kinds, all answered from one membership snapshot and all
dispatched through the existing :mod:`repro.core` algorithms:

* ``skyline`` — the full skyline (the service answers this one from the
  per-dataset :class:`~repro.core.incremental.IncrementalSkyline`, which
  amortises local-skyline state across queries; :func:`evaluate` is the
  from-scratch reference used by every other kind and by the tests);
* ``skyband`` — the k-skyband (points dominated by fewer than ``k``
  others; ``k = 1`` is the skyline), via :func:`repro.core.skyband.k_skyband`;
* ``constrained`` — the skyline of the points inside an axis-aligned
  range ``[lower, upper]`` (QoS constraints first, Pareto filter second —
  the classic constrained-skyline query);
* ``subspace`` — the skyline over a projection onto a subset of the
  attribute dimensions (ignore attributes the user doesn't care about).

A :class:`QuerySpec` is the canonical, hashable description of one query;
its :meth:`~QuerySpec.cache_key` — ``(dataset, kind, params, generation)``
— is the versioned key of the serving layer's result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.kernels import DominanceKernel, get_kernel
from repro.core.skyband import k_skyband
from repro.core.skyline import skyline

__all__ = ["QUERY_KINDS", "QuerySpec", "candidate_prune_mask", "evaluate"]

#: The query kinds the service understands.
QUERY_KINDS = ("skyline", "skyband", "constrained", "subspace")


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One fully-specified query against one registered dataset."""

    dataset: str
    kind: str = "skyline"
    #: ``skyband``: the k in k-skyband (``k >= 1``).
    k: int | None = None
    #: ``constrained``: inclusive per-dimension bounds, same length as the
    #: dataset's attribute count.
    lower: Tuple[float, ...] | None = None
    upper: Tuple[float, ...] | None = None
    #: ``subspace``: attribute dimensions to project onto (ascending, unique).
    dims: Tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ValueError("query needs a dataset name")
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; choose from {QUERY_KINDS}"
            )
        if self.kind == "skyband":
            if self.k is None or int(self.k) < 1:
                raise ValueError(f"skyband needs k >= 1, got {self.k}")
            object.__setattr__(self, "k", int(self.k))
        if self.kind == "constrained":
            if self.lower is None or self.upper is None:
                raise ValueError("constrained query needs lower and upper bounds")
            lower = tuple(float(v) for v in self.lower)
            upper = tuple(float(v) for v in self.upper)
            if len(lower) != len(upper) or not lower:
                raise ValueError(
                    f"bounds must be non-empty and equal length, got "
                    f"{len(lower)} vs {len(upper)}"
                )
            if any(lo > hi for lo, hi in zip(lower, upper)):
                raise ValueError("every lower bound must be <= its upper bound")
            object.__setattr__(self, "lower", lower)
            object.__setattr__(self, "upper", upper)
        if self.kind == "subspace":
            if not self.dims:
                raise ValueError("subspace query needs at least one dimension")
            dims = tuple(int(d) for d in self.dims)
            if len(set(dims)) != len(dims) or any(d < 0 for d in dims):
                raise ValueError(f"dims must be unique and >= 0, got {dims}")
            object.__setattr__(self, "dims", tuple(sorted(dims)))

    # -- cache identity ---------------------------------------------------------

    def params_key(self) -> Tuple[Any, ...]:
        """Canonical, hashable form of the kind-specific parameters."""
        if self.kind == "skyband":
            return (self.k,)
        if self.kind == "constrained":
            return (self.lower, self.upper)
        if self.kind == "subspace":
            return (self.dims,)
        return ()

    def cache_key(self, generation: int) -> Tuple[Any, ...]:
        """The versioned result-cache key for this query at ``generation``."""
        return (self.dataset, self.kind, self.params_key(), int(generation))

    def describe(self) -> str:
        """Short human-readable label used in spans and logs."""
        params = self.params_key()
        suffix = f":{params}" if params else ""
        return f"{self.dataset}/{self.kind}{suffix}"

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"dataset": self.dataset, "kind": self.kind}
        if self.k is not None:
            record["k"] = self.k
        if self.lower is not None:
            record["lower"] = list(self.lower)
        if self.upper is not None:
            record["upper"] = list(self.upper)
        if self.dims is not None:
            record["dims"] = list(self.dims)
        return record


def evaluate(spec: QuerySpec, ids: np.ndarray, rows: np.ndarray) -> List[int]:
    """From-scratch answer to ``spec`` over one membership snapshot.

    ``ids[i]`` is the stable point id of ``rows[i]``; the result is the
    ascending list of point ids satisfying the query.  This is both the
    serving compute path for the non-skyline kinds and the ground truth
    the differential tests compare every served answer against.
    """
    ids = np.asarray(ids, dtype=np.intp)
    if ids.size == 0:
        return []
    if rows.shape[0] != ids.shape[0]:
        raise ValueError(
            f"snapshot mismatch: {ids.shape[0]} ids for {rows.shape[0]} rows"
        )
    if spec.kind == "skyline":
        idx = skyline(rows)
    elif spec.kind == "skyband":
        assert spec.k is not None
        idx = k_skyband(rows, spec.k)
    elif spec.kind == "constrained":
        lower = np.asarray(spec.lower, dtype=np.float64)
        upper = np.asarray(spec.upper, dtype=np.float64)
        if lower.shape[0] != rows.shape[1]:
            raise ValueError(
                f"bounds cover {lower.shape[0]} dims, dataset has {rows.shape[1]}"
            )
        inside = np.flatnonzero(
            ((rows >= lower) & (rows <= upper)).all(axis=1)
        )
        if inside.size == 0:
            return []
        idx = inside[skyline(rows[inside])]
    else:  # subspace
        assert spec.dims is not None
        if max(spec.dims) >= rows.shape[1]:
            raise ValueError(
                f"dims {spec.dims} out of range for {rows.shape[1]} attributes"
            )
        idx = skyline(rows[:, spec.dims])
    return sorted(int(ids[i]) for i in idx)


def candidate_prune_mask(
    spec: QuerySpec,
    rows: np.ndarray,
    filters: np.ndarray,
    *,
    kernel: str | DominanceKernel | None = None,
) -> np.ndarray:
    """Mask over candidate ``rows``: True where the row must cross the wire.

    The cluster's Ciaccia–Martinenghi leg: the coordinator broadcasts a
    small set of **live data rows** (``filters``) with each fan-out, and a
    shard drops every local candidate the filters already refute before
    transmitting.  Because each filter point is an actual member of the
    global dataset, pruning is *exact* per query kind:

    * ``skyline`` — a candidate strictly dominated by a filter point is
      dominated by a live point, hence not in the global skyline;
    * ``skyband`` — a candidate dominated by ``k`` or more filter points
      has at least ``k`` global dominators, hence is outside the k-skyband
      (with ``k = 1`` this degenerates to the skyline rule);
    * ``constrained`` — only filter points *inside* the query box count
      (an out-of-box dominator does not exclude an in-box point from the
      constrained skyline);
    * ``subspace`` — dominance is tested on the projected coordinates.

    Returns a boolean ``(len(rows),)`` array; with no applicable filters
    every candidate survives.
    """
    rows = np.asarray(rows, dtype=np.float64)
    flt = np.asarray(filters, dtype=np.float64)
    keep_all = np.ones(rows.shape[0], dtype=bool)
    if rows.shape[0] == 0 or flt.shape[0] == 0:
        return keep_all
    if flt.shape[1] != rows.shape[1]:
        raise ValueError(
            f"filter width {flt.shape[1]} != candidate width {rows.shape[1]}"
        )
    knl = get_kernel(kernel)
    if spec.kind == "skyline":
        return knl.filter_survivors(flt, rows, stage="cluster-prune")
    if spec.kind == "skyband":
        assert spec.k is not None
        if spec.k == 1:
            return knl.filter_survivors(flt, rows, stage="cluster-prune")
        # Count filter dominators per candidate: filters are tiny (k <= 32
        # by default), so the dense broadcast is cheaper than a kernel call.
        le = (flt[None, :, :] <= rows[:, None, :]).all(axis=2)
        lt = (flt[None, :, :] < rows[:, None, :]).any(axis=2)
        return (le & lt).sum(axis=1) < spec.k
    if spec.kind == "constrained":
        lower = np.asarray(spec.lower, dtype=np.float64)
        upper = np.asarray(spec.upper, dtype=np.float64)
        if lower.shape[0] != flt.shape[1]:
            return keep_all
        inside = ((flt >= lower) & (flt <= upper)).all(axis=1)
        if not inside.any():
            return keep_all
        return knl.filter_survivors(flt[inside], rows, stage="cluster-prune")
    assert spec.dims is not None
    if max(spec.dims) >= flt.shape[1]:
        return keep_all
    dims = list(spec.dims)
    return knl.filter_survivors(
        np.ascontiguousarray(flt[:, dims]),
        np.ascontiguousarray(rows[:, dims]),
        stage="cluster-prune",
    )
