"""Each rule pack catches its violating fixture and passes its clean one.

The violating fixtures carry ``# VIOLATION: rule-id`` markers on every
offending line; the tests assert the checker reports exactly the marked
``(line, rule_id)`` pairs — no misses, no extras.
"""

import dataclasses

import pytest

from repro.analysis import run_lint

from tests.analysis.conftest import expected_violations, fixture_path


def found_pairs(name: str, rule_id: str) -> set:
    result = run_lint([fixture_path(name)], rule_ids=[rule_id])
    return {(f.line, f.rule_id) for f in result.findings}


@pytest.mark.parametrize(
    ("rule_id", "violating", "clean"),
    [
        ("udf-purity", "udf_impure.py", "udf_pure.py"),
        ("udf-no-sleep", "udf_sleepy.py", "udf_wakeful.py"),
        ("pickle-safety", "pickle_unsafe.py", "pickle_safe.py"),
        ("lock-discipline", "lock_unsafe.py", "lock_safe.py"),
        ("lock-discipline", "lock_serving_unsafe.py", "lock_serving_safe.py"),
        ("wal-discipline", "lock_wal_unsafe.py", "lock_wal_safe.py"),
        ("exception-hygiene", "except_swallow.py", "except_ok.py"),
        ("kernel-seam", "kernel_seam_direct.py", "kernel_seam_clean.py"),
        ("lock-order-cycle", "flow_cycle_deadlock.py", "flow_cycle_clean.py"),
        ("blocking-under-lock", "flow_blocking_locked.py", "flow_blocking_clean.py"),
        ("escape-analysis", "flow_escape_unsafe.py", "flow_escape_safe.py"),
    ],
)
class TestRulePacks:
    def test_catches_every_marked_line(self, rule_id, violating, clean):
        expected = expected_violations(violating)
        assert expected, f"fixture {violating} declares no VIOLATION markers"
        assert found_pairs(violating, rule_id) == expected

    def test_clean_fixture_has_no_findings(self, rule_id, violating, clean):
        result = run_lint([fixture_path(clean)], rule_ids=[rule_id])
        assert result.findings == []
        assert result.exit_code == 0


class TestFindingShape:
    def test_findings_carry_symbol_and_fingerprint(self):
        result = run_lint(
            [fixture_path("except_swallow.py")],
            rule_ids=["exception-hygiene"],
        )
        assert result.findings
        for finding in result.findings:
            assert finding.rule_id == "exception-hygiene"
            assert finding.symbol  # enclosing function name
            fingerprint = finding.fingerprint()
            assert fingerprint.startswith("exception-hygiene:")
            shifted = dataclasses.replace(finding, line=finding.line + 40)
            assert shifted.fingerprint() == fingerprint

    def test_lock_findings_name_class_attr_and_method(self):
        result = run_lint(
            [fixture_path("lock_unsafe.py")], rule_ids=["lock-discipline"]
        )
        messages = "\n".join(f.message for f in result.findings)
        assert "RacyBuffer._items" in messages
        assert "sneak()" in messages

    def test_udf_findings_explain_the_contract(self):
        result = run_lint(
            [fixture_path("udf_impure.py")], rule_ids=["udf-purity"]
        )
        messages = "\n".join(f.message for f in result.findings)
        assert "random.random" in messages
        assert "get_metrics" in messages
        assert "module-level" in messages

    def test_pickle_findings_cover_all_boundary_shapes(self):
        result = run_lint(
            [fixture_path("pickle_unsafe.py")], rule_ids=["pickle-safety"]
        )
        messages = "\n".join(f.message for f in result.findings)
        assert "mapper=" in messages
        assert "partitioner" in messages
        assert "params" in messages
        assert "LocalMapper" in messages
        assert "submit" in messages
