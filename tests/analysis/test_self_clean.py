"""The engine's own tree must lint clean — the PR's standing invariant.

`repro lint src/repro` exiting non-zero means either a real contract
violation crept in or a suppression lost its rule id; both block CI.
"""

import os

import repro
from repro.analysis import run_lint
from repro.cli import main


def _src_repro() -> str:
    return os.path.dirname(os.path.abspath(repro.__file__))


class TestSelfClean:
    def test_engine_tree_lints_clean(self):
        result = run_lint([_src_repro()])
        details = "\n".join(
            f"{f.path}:{f.line}: {f.rule_id}: {f.message}"
            for f in result.findings
        )
        assert result.findings == [], f"src/repro is not lint-clean:\n{details}"
        assert result.exit_code == 0
        assert result.checked_files > 50

    def test_cli_self_lint_exits_zero(self, capsys):
        assert main(["lint", _src_repro()]) == 0
        capsys.readouterr()

    def test_suppressions_in_tree_are_documented(self):
        """Every allow-pragma in the engine names a known rule and carries
        a human reason beyond the bare pragma."""
        from repro.analysis.base import all_rule_ids
        from repro.analysis.suppressions import parse_suppressions

        known = set(all_rule_ids())
        for dirpath, _, filenames in os.walk(_src_repro()):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, encoding="utf-8") as fh:
                    source = fh.read()
                sup = parse_suppressions(source)
                assert sup.malformed == [], f"malformed pragma in {path}"
                for line, _, rule_id in sup.named_ids:
                    assert rule_id in known, f"{path}:{line}: {rule_id}"
