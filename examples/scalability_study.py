#!/usr/bin/env python
"""Scalability study — a miniature of the paper's Figure 6.

Runs the MR-Angle pipeline once on a large service set, then replays the
measured task timings on simulated clusters from 4 to 32 servers,
printing the Map/Reduce breakdown the paper plots as sectioned bars.
Also compares all three partitioning methods at a fixed cluster size
(a miniature of Figure 5b at one dimension).

Run:  python examples/scalability_study.py
"""

from repro import generate_qws, extend_dataset, run_mr_skyline
from repro.core.optimality import optimality_of_result
from repro.mapreduce.cluster import ClusterSpec

def main() -> None:
    base = generate_qws(10_000, seed=42)
    big = extend_dataset(base, 50_000, seed=43)
    matrix = big.qos_matrix(8)
    print(f"workload: {matrix.shape[0]:,} services x {matrix.shape[1]} attributes\n")

    # --- Figure-6 style sweep: one run, replayed per cluster size --------
    node_counts = (4, 8, 16, 24, 32)
    result = run_mr_skyline(
        matrix, method="angle",
        num_workers=max(node_counts),
        num_partitions=2 * max(node_counts),
    )
    base_cluster = ClusterSpec(num_nodes=4, speed_factor=100.0)
    print("servers   map_time   reduce_time   total")
    for nodes in node_counts:
        sim = result.simulate(base_cluster.scaled(num_nodes=nodes))
        print(f"{nodes:7d}   {sim.map_time_s:8.1f}   {sim.reduce_time_s:11.1f}"
              f"   {sim.total_s:5.1f}")

    # --- Method comparison at 4 servers (Figure-5b style) ----------------
    print("\nmethod     total_s   optimality   dominance_tests")
    per_method = {}
    for method in ("dim", "grid", "angle"):
        res = run_mr_skyline(matrix, method=method, num_workers=4)
        per_method[method] = res
        sim = res.simulate(base_cluster)
        opt = optimality_of_result(res).optimality
        print(f"{method:8s} {sim.total_s:9.1f}   {opt:10.3f}   "
              f"{res.dominance_tests:15,}")

    # --- Why MR-Dim loses: the reduce-phase Gantt makes the skew visible --
    from repro.mapreduce.history import render_gantt

    print("\nlocal-skyline job schedule, MR-Dim vs MR-Angle "
          "(m = map task, R = reduce task):\n")
    for method in ("dim", "angle"):
        print(render_gantt(
            per_method[method].chain.results[0], base_cluster, width=60
        ))

if __name__ == "__main__":
    main()
