"""Dominance-ability analysis — §IV of the paper (Theorems 1 and 2).

The paper compares MR-Grid and MR-Angle on a 2-D square data space of side
``2L``, both divided into 4 partitions, for a skyline point ``s = (x, y)``
lying in the partition nearest the x-axis (so ``y ≤ x/2`` — under the
4-sector angular split of the square, the lowest sector is bounded by the
line ``y = x/2``).

*Dominance ability* of ``s`` is the fraction of its own partition's area
that ``s`` dominates.  The closed forms are taken verbatim from the paper:

* Theorem 1 (Eq. 3):  ``D_angle = (L² − x²/4 − (2L − x)·y) / L²``
* MR-Grid (proof of Thm 2): ``D_grid = (L − x)(L − y) / L²``
* Theorem 2 (Eq. 4):  ``ΔD = D_angle − D_grid ≥ x/(2L²) · (L − x/2)``

These formulas encode the paper's specific partition geometry (each of the
4 partitions has area ``L²``).  This module provides the closed forms, the
exact ΔD, the lower bound, and a Monte-Carlo *empirical* dominance-ability
estimator that works for any partitioner and dimension — used by the theory
benchmark to check the closed forms and by ablations to extend the
comparison beyond 2-D.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dominance import validate_points
from repro.core.partitioning.base import SpacePartitioner

__all__ = [
    "dominance_ability_angle",
    "dominance_ability_grid",
    "delta_dominance",
    "delta_lower_bound",
    "empirical_dominance_ability",
    "EmpiricalDominance",
]


def _check_point(x: float, y: float, L: float) -> None:
    if L <= 0:
        raise ValueError(f"L must be positive, got {L}")
    if not (0 <= x <= 2 * L and 0 <= y <= 2 * L):
        raise ValueError(f"point ({x}, {y}) outside the [0, 2L]² data space")


def dominance_ability_angle(x: float, y: float, L: float) -> float:
    """Theorem 1 (Eq. 3): dominance ability of ``(x, y)`` under MR-Angle."""
    _check_point(x, y, L)
    return (L * L - x * x / 4.0 - (2.0 * L - x) * y) / (L * L)


def dominance_ability_grid(x: float, y: float, L: float) -> float:
    """MR-Grid dominance ability (from the proof of Theorem 2)."""
    _check_point(x, y, L)
    return (L - x) * (L - y) / (L * L)


def delta_dominance(x: float, y: float, L: float) -> float:
    """Exact ΔD = D_angle − D_grid = (−x²/4 − yL + xL) / L²."""
    _check_point(x, y, L)
    return (-x * x / 4.0 - y * L + x * L) / (L * L)


def delta_lower_bound(x: float, L: float) -> float:
    """Theorem 2's bound: ΔD ≥ x/(2L²)·(L − x/2), valid for y ≤ x/2."""
    if L <= 0:
        raise ValueError(f"L must be positive, got {L}")
    return x / (2.0 * L * L) * (L - x / 2.0)


@dataclass(frozen=True, slots=True)
class EmpiricalDominance:
    """Monte-Carlo dominance ability of one point within its partition."""

    ability: float  # dominated / partition-total, the paper's D_si
    dominated: int
    partition_total: int


def empirical_dominance_ability(
    point: np.ndarray,
    sample: np.ndarray,
    partitioner: SpacePartitioner,
) -> EmpiricalDominance:
    """Estimate ``D_s = Num_s / Num_partition`` by counting sample points.

    ``sample`` approximates the data space (e.g. uniform over the square);
    the partitioner must already be fitted.  Matches the paper's area-ratio
    definition as the sample grows dense.
    """
    point = np.asarray(point, dtype=np.float64).reshape(-1)
    sample = validate_points(sample)
    if point.shape[0] != sample.shape[1]:
        raise ValueError(
            f"point has {point.shape[0]} dims, sample has {sample.shape[1]}"
        )
    pid = int(partitioner.assign(point.reshape(1, -1))[0])
    ids = partitioner.assign(sample)
    in_partition = ids == pid
    total = int(in_partition.sum())
    if total == 0:
        return EmpiricalDominance(ability=0.0, dominated=0, partition_total=0)
    members = sample[in_partition]
    ge = (members >= point).all(axis=1)
    gt = (members > point).any(axis=1)
    dominated = int((ge & gt).sum())
    return EmpiricalDominance(
        ability=dominated / total, dominated=dominated, partition_total=total
    )
