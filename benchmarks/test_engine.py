"""Micro-benchmarks of the MapReduce engine substrate.

Throughput of the engine itself (map dispatch, combine, shuffle sort,
reduce grouping) on a classic wordcount, plus the hyperspherical transform
and the partitioner assignment kernels that run inside every map task.
"""

import numpy as np
import pytest

from repro.core.hyperspherical import to_hyperspherical
from repro.core.partitioning import (
    AngularPartitioner,
    DimensionalPartitioner,
    GridPartitioner,
)
from repro.mapreduce import Job, JobConf, Mapper, Reducer, run_job


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _wordcount_records(n_lines=2_000, words_per_line=20):
    rng = np.random.default_rng(0)
    vocab = [f"word{i}" for i in range(500)]
    return [
        (None, " ".join(rng.choice(vocab, size=words_per_line)))
        for _ in range(n_lines)
    ]


def test_engine_wordcount(benchmark):
    records = _wordcount_records()
    job = Job(
        name="wc-bench",
        mapper=TokenMapper,
        reducer=SumReducer,
        conf=JobConf(num_reducers=4, num_map_tasks=4),
    )
    result = benchmark(lambda: run_job(job, records=records))
    assert sum(v for _, v in result.output_pairs()) == 2_000 * 20


def test_engine_wordcount_with_combiner(benchmark):
    records = _wordcount_records()
    job = Job(
        name="wc-bench-combine",
        mapper=TokenMapper,
        reducer=SumReducer,
        combiner=SumReducer,
        conf=JobConf(num_reducers=4, num_map_tasks=4),
    )
    result = benchmark(lambda: run_job(job, records=records))
    assert sum(v for _, v in result.output_pairs()) == 2_000 * 20


def test_hyperspherical_transform(benchmark):
    pts = np.random.default_rng(1).random((100_000, 10))
    r, angles = benchmark(to_hyperspherical, pts)
    assert angles.shape == (100_000, 9)


@pytest.mark.parametrize(
    "partitioner_factory",
    [
        lambda: DimensionalPartitioner(8),
        lambda: GridPartitioner(8),
        lambda: AngularPartitioner(8),
    ],
    ids=["dim", "grid", "angle"],
)
def test_partitioner_assign(benchmark, partitioner_factory):
    pts = np.random.default_rng(2).random((100_000, 6))
    partitioner = partitioner_factory().fit(pts)
    ids = benchmark(partitioner.assign, pts)
    assert ids.shape == (100_000,)
