"""Cluster specification for the deterministic timing simulation.

The paper's Figure 6 sweeps a Hadoop cluster from 4 to 32 servers (Intel
Core Duo E7400, 3.25 GB RAM, Hadoop 0.20.2).  We cannot spawn 32 servers on
one machine, so the reproduction measures *per-task* costs once (serial
runner) and replays them through a slot/wave model parameterised by a
:class:`ClusterSpec`.  The defaults mirror Hadoop-0.20-era settings: two map
slots and two reduce slots per dual-core node, multi-second task launch
overhead (JVM start), and a per-job submission overhead.

``speed_factor`` rescales measured Python task seconds into simulated
cluster-node seconds.  The reproduction cares about *shape* (saturation past
~24 nodes, the Reduce share shrinking), which is invariant to this factor;
the default is calibrated in :mod:`repro.bench.experiments` so the 4-server
point lands near the paper's ≈230 s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapreduce.scheduler import Policy


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """A homogeneous cluster for the wave-based timing model.

    Attributes
    ----------
    num_nodes:
        Worker (slave) server count.
    map_slots_per_node / reduce_slots_per_node:
        Concurrent task slots per node (Hadoop 0.20 defaults: 2 / 2).
    task_launch_s:
        Per-task startup charge (JVM spawn + task setup).
    job_overhead_s:
        Per-job fixed cost (job submission, split computation, cleanup).
    network_mbps_per_node:
        Per-node NIC throughput available to the shuffle, in megabytes/s.
        The shuffle is all-to-all, so aggregate bandwidth grows with nodes.
    shuffle_latency_s:
        Fixed connection-setup cost of the copy phase.
    speed_factor:
        Multiplier converting measured driver seconds into simulated
        cluster-node seconds (>1 means the simulated node is slower than
        the measuring machine).
    scheduling_policy:
        Slot-assignment policy for both phases.
    """

    num_nodes: int
    map_slots_per_node: int = 2
    reduce_slots_per_node: int = 2
    task_launch_s: float = 1.0
    job_overhead_s: float = 5.0
    network_mbps_per_node: float = 40.0
    shuffle_latency_s: float = 0.5
    speed_factor: float = 1.0
    scheduling_policy: Policy = "fifo"

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.map_slots_per_node <= 0 or self.reduce_slots_per_node <= 0:
            raise ValueError("slots per node must be >= 1")
        for name in (
            "task_launch_s",
            "job_overhead_s",
            "network_mbps_per_node",
            "shuffle_latency_s",
            "speed_factor",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.speed_factor == 0:
            raise ValueError("speed_factor must be positive")

    @property
    def map_slots(self) -> int:
        return self.num_nodes * self.map_slots_per_node

    @property
    def reduce_slots(self) -> int:
        return self.num_nodes * self.reduce_slots_per_node

    @property
    def aggregate_shuffle_bytes_per_s(self) -> float:
        """All-to-all copy bandwidth: each node contributes its NIC."""
        return self.network_mbps_per_node * 1e6 * self.num_nodes

    def scaled(self, **overrides) -> "ClusterSpec":
        """A copy with some fields replaced (spec is frozen)."""
        from dataclasses import replace

        return replace(self, **overrides)
