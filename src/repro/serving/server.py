"""Serving front ends: JSON-lines over stdio or a threading TCP socket.

``repro serve`` (see :mod:`repro.cli`) builds a
:class:`~repro.serving.service.SkylineService` and hands it to one of the
two loops here:

* :func:`serve_stdio` — one session over stdin/stdout, the default.  A
  client drives it through a pipe (see
  :class:`repro.serving.client.ServingClient.spawn`); the CI smoke job and
  the tests use exactly this path.
* :func:`make_tcp_server` — a ``ThreadingTCPServer``; every connection is
  its own session thread, so concurrent clients exercise the service's
  admission control and coalescing for real.

Both loops speak the protocol of :mod:`repro.serving.protocol` and exit
cleanly on a successful ``shutdown`` op.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading
from typing import IO, Any, Callable, Dict, Iterable

from repro.serving.protocol import handle_request

__all__ = ["serve_lines", "serve_stdio", "make_tcp_server"]

#: A request dispatcher: ``(service, decoded request) -> response object``.
#: :func:`repro.serving.protocol.handle_request` is the single-node one;
#: the cluster coordinator plugs in its own and reuses both loops.
RequestHandler = Callable[[Any, Dict[str, Any]], Dict[str, Any]]


def _respond(out: IO[str], response: Dict[str, Any]) -> None:
    out.write(json.dumps(response, default=str) + "\n")
    out.flush()


def serve_lines(
    service: Any,
    lines: Iterable[str],
    out: IO[str],
    *,
    handler: RequestHandler = handle_request,
) -> bool:
    """Run one request/response session; True if it ended via ``shutdown``."""
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            _respond(
                out,
                {"ok": False, "status": "error", "error": f"bad JSON: {exc}"},
            )
            continue
        response = handler(service, request)
        _respond(out, response)
        if (
            isinstance(request, dict)
            and request.get("op") == "shutdown"
            and response.get("ok")
        ):
            return True
    return False


def serve_stdio(
    service: Any,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
    *,
    handler: RequestHandler = handle_request,
) -> None:
    """Serve one session over stdin/stdout (the ``repro serve`` default)."""
    serve_lines(
        service,
        stdin if stdin is not None else sys.stdin,
        stdout if stdout is not None else sys.stdout,
        handler=handler,
    )


class _SessionHandler(socketserver.StreamRequestHandler):
    """One TCP connection = one JSON-lines session."""

    def handle(self) -> None:
        server: "ServingTCPServer" = self.server  # type: ignore[assignment]
        reader = (raw.decode("utf-8", "replace") for raw in self.rfile)
        out = _TextOut(self.wfile)
        if serve_lines(server.service, reader, out, handler=server.handler):
            # A successful shutdown op stops the whole server, not just
            # this session; shutdown() must come from another thread.
            threading.Thread(target=server.shutdown, daemon=True).start()


class _TextOut:
    """Minimal text adapter over the handler's binary write file."""

    def __init__(self, wfile: Any) -> None:
        self._wfile = wfile

    def write(self, text: str) -> None:
        self._wfile.write(text.encode("utf-8"))

    def flush(self) -> None:
        self._wfile.flush()


class ServingTCPServer(socketserver.ThreadingTCPServer):
    """Threading TCP server bound to one service and one dispatcher."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple,
        service: Any,
        handler: RequestHandler = handle_request,
    ):
        super().__init__(address, _SessionHandler)
        self.service = service
        self.handler = handler


def make_tcp_server(
    service: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    handler: RequestHandler = handle_request,
) -> ServingTCPServer:
    """Bind a TCP server (``port=0`` picks a free port; see
    ``server.server_address``); the caller runs ``serve_forever()``."""
    return ServingTCPServer((host, port), service, handler)
