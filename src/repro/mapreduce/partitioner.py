"""Partitioners: key → reduce-partition routing.

The partitioner decides which reduce task receives each intermediate key.
For the skyline jobs, keys are already partition ids produced by the data-
space partitioning scheme (dimensional / grid / angular), so
:class:`KeyFieldPartitioner` with the identity field is the common choice:
partition ``i`` of the data space lands on reducer ``i % R``.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Any, Callable, Hashable, Sequence

from repro.mapreduce.errors import JobConfigError


class Partitioner:
    """Maps a key to an integer in ``[0, num_partitions)``."""

    def partition(self, key: Hashable, num_partitions: int) -> int:
        raise NotImplementedError

    def __call__(self, key: Hashable, num_partitions: int) -> int:
        return self.partition(key, num_partitions)


class HashPartitioner(Partitioner):
    """Stable hash partitioning (Hadoop's default).

    Uses BLAKE2 over ``repr(key)`` rather than Python's ``hash`` so results
    are stable across interpreter runs and worker processes (``PYTHONHASHSEED``
    randomisation would otherwise make shuffles non-deterministic).
    """

    def partition(self, key: Hashable, num_partitions: int) -> int:
        digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "little") % num_partitions


class KeyFieldPartitioner(Partitioner):
    """Routes integer-convertible keys by value: ``int(field(key)) % R``.

    With the default identity field this sends data-space partition ``i`` to
    reducer ``i % R`` — the natural routing for the skyline jobs, where the
    map stage already assigned a partition id.
    """

    def __init__(self, field: Callable[[Hashable], Any] | None = None):
        # None means identity; kept as None (not a lambda) so the
        # partitioner stays picklable for the multiprocessing runner.
        self._field = field

    def partition(self, key: Hashable, num_partitions: int) -> int:
        value = key if self._field is None else self._field(key)
        try:
            return int(value) % num_partitions
        except (TypeError, ValueError) as exc:
            raise JobConfigError(
                f"KeyFieldPartitioner needs an integer-convertible key field, "
                f"got {value!r}"
            ) from exc


class RangePartitioner(Partitioner):
    """Routes by sorted boundary list: key ≤ boundaries[i] → partition i.

    ``boundaries`` must be sorted ascending and have length ``R - 1``; the
    final partition catches everything greater than the last boundary.
    """

    def __init__(self, boundaries: Sequence[Any]):
        bounds = list(boundaries)
        if any(bounds[i] > bounds[i + 1] for i in range(len(bounds) - 1)):
            raise JobConfigError(f"boundaries not sorted: {bounds!r}")
        self._boundaries = bounds

    def partition(self, key: Hashable, num_partitions: int) -> int:
        if len(self._boundaries) != num_partitions - 1:
            raise JobConfigError(
                f"RangePartitioner has {len(self._boundaries)} boundaries but "
                f"the job has {num_partitions} partitions (need R-1)"
            )
        return bisect_left(self._boundaries, key)


class SingleReducerPartitioner(Partitioner):
    """Sends every key to partition 0 — the global-merge stage of Algorithm 1."""

    def partition(self, key: Hashable, num_partitions: int) -> int:
        return 0
