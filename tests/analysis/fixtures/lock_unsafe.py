"""Violating fixture for lock-discipline (see udf_impure for the marker rules)."""

import threading


class RacyBuffer:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # constructor writes are exempt
        self.count = 0

    def push(self, item):
        with self._lock:
            self._items.append(item)
            self.count += 1

    def sneak(self, item):
        self._items.append(item)  # VIOLATION: lock-discipline
        self.count = self.count + 1  # VIOLATION: lock-discipline

    def reset(self):
        self._items, self.count = [], 0  # VIOLATION: lock-discipline


class Unshared:
    """No lock attribute at all: bare writes are fine here."""

    def __init__(self):
        self.items = []

    def push(self, item):
        self.items.append(item)
