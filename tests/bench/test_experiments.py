"""Tests for the figure drivers (scaled-down parameters)."""

import numpy as np
import pytest

from repro.bench.experiments import (
    PAPER_DIMS,
    PAPER_METHODS,
    ablations,
    figure5,
    figure6,
    figure7,
    headline,
    stragglers,
    theory,
)
from repro.bench.harness import DatasetCache
from repro.mapreduce.cluster import ClusterSpec

QUICK = ClusterSpec(num_nodes=2, speed_factor=1.0)


@pytest.fixture(scope="module")
def cache():
    return DatasetCache()


class TestFigure5:
    def test_structure(self, cache):
        t = figure5(400, dims=(2, 3), cluster=QUICK, cache=cache)
        assert t.columns == ["dimension", "MR-Dim", "MR-Grid", "MR-Angle"]
        assert t.column("dimension") == [2, 3]
        for method in ("MR-Dim", "MR-Grid", "MR-Angle"):
            assert all(v > 0 for v in t.column(method))

    def test_title_marks_subfigure(self, cache):
        assert "5(a)" in figure5(400, dims=(2,), cluster=QUICK, cache=cache).title
        assert "5(b)" in figure5(
            10_500, dims=(2,), cluster=QUICK, cache=cache
        ).title


class TestFigure6:
    def test_structure(self, cache):
        t = figure6(
            n=2_000, d=4, node_counts=(2, 4), base_cluster=QUICK, cache=cache
        )
        assert t.columns == [
            "servers",
            "map_time_s",
            "reduce_time_s",
            "total_s",
            "total_tree_merge_s",
        ]
        assert t.column("servers") == [2, 4]
        for row in t.rows:
            assert row[3] == pytest.approx(row[1] + row[2])
            assert row[4] > 0

    def test_tree_merge_column_optional(self, cache):
        t = figure6(
            n=2_000,
            d=4,
            node_counts=(2,),
            base_cluster=QUICK,
            cache=cache,
            include_tree_merge=False,
        )
        assert t.columns == ["servers", "map_time_s", "reduce_time_s", "total_s"]

    def test_more_servers_not_slower(self, cache):
        t = figure6(
            n=2_000, d=4, node_counts=(2, 4, 8), base_cluster=QUICK, cache=cache
        )
        totals = t.column("total_s")
        assert totals == sorted(totals, reverse=True) or max(totals) == totals[0]


class TestFigure7:
    def test_structure(self, cache):
        t = figure7(400, dims=(2, 3), cluster=QUICK, cache=cache)
        assert t.columns[-1] == "MR-Angle(eq-width)"
        for col in t.columns[1:]:
            assert all(0 <= v <= 1 for v in t.column(col))

    def test_without_equal_width_column(self, cache):
        t = figure7(
            400, dims=(2,), cluster=QUICK, cache=cache, include_equal_width=False
        )
        assert t.columns == ["dimension", "MR-Dim", "MR-Grid", "MR-Angle"]


class TestHeadline:
    def test_structure(self, cache):
        t = headline(n=2_000, d=4, cluster=QUICK, cache=cache)
        assert t.column("method") == ["MR-Dim", "MR-Grid", "MR-Angle"]
        speedups = dict(zip(t.column("method"), t.column("speedup_vs_angle")))
        assert speedups["MR-Angle"] == pytest.approx(1.0)
        assert all(s > 0 for s in speedups.values())


class TestTheory:
    def test_bound_always_holds(self):
        t = theory(mc_samples=20_000, grid_points=5)
        assert all(t.column("bound_holds"))

    def test_monte_carlo_tracks_closed_form(self):
        t = theory(mc_samples=100_000, grid_points=5)
        for closed, mc in zip(t.column("D_angle_eq3"), t.column("D_angle_mc")):
            assert mc == pytest.approx(closed, abs=0.02)

    def test_angle_beats_grid_everywhere(self):
        t = theory(mc_samples=10_000, grid_points=7)
        for a, g in zip(t.column("D_angle_eq3"), t.column("D_grid")):
            assert a > g


class TestAblations:
    def test_all_variants_present(self, cache):
        t = ablations(n=400, d=3, cluster=QUICK, cache=cache)
        variants = t.column("variant")
        assert "angle (2x workers, quantile)" in variants
        assert "grid (with pruning)" in variants
        assert "random baseline" in variants
        assert len(variants) >= 8

    def test_metrics_sane(self, cache):
        t = ablations(n=400, d=3, cluster=QUICK, cache=cache)
        assert all(v > 0 for v in t.column("sim_total_s"))
        assert all(0 <= v <= 1 for v in t.column("optimality"))
        assert all(v >= 1.0 or v == 0.0 for v in t.column("imbalance"))


class TestStragglers:
    def test_structure(self, cache):
        t = stragglers(n=400, d=3, cluster=QUICK, cache=cache)
        assert t.columns[0] == "straggler_prob"
        overheads = t.column("overhead_vs_clean")
        assert all(v >= 1.0 - 1e-9 for v in overheads)
        # prob 0 row is the baseline.
        assert overheads[0] == pytest.approx(1.0)

    def test_speculation_not_worse(self, cache):
        t = stragglers(n=400, d=3, cluster=QUICK, cache=cache)
        rows = {(r[0], r[2]): r[3] for r in t.rows}
        for prob in (0.1, 0.3):
            assert rows[(prob, True)] <= rows[(prob, False)] + 1e-9


class TestConstants:
    def test_paper_dims(self):
        assert PAPER_DIMS == (2, 4, 6, 8, 10)

    def test_paper_methods(self):
        assert PAPER_METHODS == ("dim", "grid", "angle")
