"""Tests for representative-skyline selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.representative import (
    distance_representatives,
    max_dominance_representatives,
)
from repro.core.skyline import skyline_numpy

clouds = arrays(
    np.float64,
    st.tuples(st.integers(2, 60), st.integers(2, 4)),
    elements=st.floats(0, 20, allow_nan=False),
)


@pytest.fixture(scope="module")
def cloud():
    return np.random.default_rng(0).random((1500, 3))


class TestMaxDominance:
    def test_representatives_are_skyline_points(self, cloud):
        sky = set(skyline_numpy(cloud).tolist())
        result = max_dominance_representatives(cloud, 5)
        assert set(result.indices.tolist()) <= sky
        assert len(result) == 5

    def test_k_one_picks_max_dominator(self, cloud):
        result = max_dominance_representatives(cloud, 1)
        # The single pick must dominate at least as much as any other
        # skyline point.
        sky = skyline_numpy(cloud)
        best = result.indices[0]

        def coverage(i):
            le = (cloud[i] <= cloud).all(axis=1)
            lt = (cloud[i] < cloud).any(axis=1)
            return int((le & lt).sum())

        assert coverage(best) == max(coverage(i) for i in sky)
        assert result.score == coverage(best)

    def test_coverage_monotone_in_k(self, cloud):
        scores = [
            max_dominance_representatives(cloud, k).score for k in (1, 3, 6)
        ]
        assert scores == sorted(scores)

    def test_k_larger_than_skyline(self):
        pts = np.array([[0.0, 1.0], [1.0, 0.0], [2.0, 2.0]])
        result = max_dominance_representatives(pts, 10)
        assert sorted(result.indices.tolist()) == [0, 1]

    def test_precomputed_skyline_accepted(self, cloud):
        sky = skyline_numpy(cloud)
        a = max_dominance_representatives(cloud, 4, skyline_indices=sky)
        b = max_dominance_representatives(cloud, 4)
        assert np.array_equal(a.indices, b.indices)

    def test_invalid_k(self, cloud):
        with pytest.raises(ValueError):
            max_dominance_representatives(cloud, 0)

    def test_empty_input(self):
        result = max_dominance_representatives(np.empty((0, 2)), 3)
        assert len(result) == 0

    @given(clouds, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_property_picks_are_skyline(self, pts, k):
        result = max_dominance_representatives(pts, k)
        sky = set(skyline_numpy(pts).tolist())
        assert set(result.indices.tolist()) <= sky
        assert len(result) == min(k, len(sky))


class TestDistanceBased:
    def test_representatives_are_skyline_points(self, cloud):
        sky = set(skyline_numpy(cloud).tolist())
        result = distance_representatives(cloud, 5)
        assert set(result.indices.tolist()) <= sky

    def test_radius_decreases_with_k(self, cloud):
        radii = [distance_representatives(cloud, k).score for k in (1, 3, 8)]
        assert radii == sorted(radii, reverse=True)

    def test_full_skyline_zero_radius(self):
        pts = np.array([[0.0, 3.0], [1.0, 1.0], [3.0, 0.0], [4.0, 4.0]])
        sky_size = skyline_numpy(pts).size
        result = distance_representatives(pts, sky_size)
        assert result.score == pytest.approx(0.0)

    def test_seed_index(self, cloud):
        a = distance_representatives(cloud, 3, seed_index=0)
        assert len(a) == 3
        with pytest.raises(ValueError):
            distance_representatives(cloud, 3, seed_index=10_000)

    def test_spread_beats_clump(self):
        # Representatives should cover both ends of an anti-correlated front.
        x = np.linspace(0, 1, 50)
        pts = np.column_stack([x, 1 - x])
        result = distance_representatives(pts, 3)
        chosen_x = np.sort(pts[result.indices][:, 0])
        assert chosen_x[0] < 0.25 and chosen_x[-1] > 0.75

    def test_invalid_k(self, cloud):
        with pytest.raises(ValueError):
            distance_representatives(cloud, 0)

    def test_empty_input(self):
        assert len(distance_representatives(np.empty((0, 2)), 3)) == 0

    @given(clouds, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_property_radius_nonnegative(self, pts, k):
        result = distance_representatives(pts, k)
        assert result.score >= 0.0
