"""Repo-wide pytest hooks.

When ``REPRO_SANITIZE=locks`` is exported (the CI chaos/serving sanitizer
legs do this), the runtime lock-order sanitizer is installed before any
test module imports repro code, a JSON report is dumped to
``$REPRO_SANITIZE_REPORT`` if set, and the session is forced to a nonzero
exit when any lock-order inversion was observed — even if every test
nominally passed.
"""

import os


def pytest_configure(config):
    if os.environ.get("REPRO_SANITIZE"):
        from repro.observability.sanitizer import install_from_env

        install_from_env()


def pytest_sessionfinish(session, exitstatus):
    from repro.observability import sanitizer

    active = sanitizer.active()
    if active is None:
        return
    report_path = os.environ.get("REPRO_SANITIZE_REPORT")
    if report_path:
        active.dump(report_path)
    if active.inversions and session.exitstatus == 0:
        lines = [
            f"  {inv.first} -> {inv.second} ({inv.witness}; "
            f"prior {inv.prior})"
            for inv in active.inversions
        ]
        print(
            "\nlock-order sanitizer observed "
            f"{len(active.inversions)} inversion(s):\n" + "\n".join(lines)
        )
        session.exitstatus = 3
