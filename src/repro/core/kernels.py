"""Pluggable dominance kernels — *how* dominance work executes.

The algorithms in :mod:`repro.core` all reduce to the same handful of
dominance operations: "does anything in this window dominate the point",
"which window rows does the point evict", "which of these rows survive a
filter set", "the skyline of this batch".  This module isolates those
operations behind the :class:`DominanceKernel` seam — the dominance
analogue of the PR-2 executor seam — with two backends:

* :class:`ScalarKernel` (``"scalar"``) — the **reference**: point-at-a-time
  processing exactly as the algorithms have always done it (one candidate
  against the window per step).  Ground truth for the parity suite and the
  counting semantics behind every BENCH_* record so far.
* :class:`BlockKernel` (``"block"``) — columnar batches: candidates flow
  through in chunks, each chunk is filtered against the accumulated
  skyline with two broadcast comparisons, and intra-chunk dominance is one
  pairwise matrix.  Same results bit for bit (the skyline is unique);
  orders of magnitude fewer interpreter transitions.

The block backend's :meth:`~DominanceKernel.skyline` applies the
Ciaccia–Martinenghi *sort-first* ordering (monotone entropy score with a
full lexicographic tiebreak, the SFS invariant) before sweeping, so no
point is ever evicted and one pass always suffices; the broadcast
*filter-point* stage of the same paper lives in
:mod:`repro.core.filtering` and calls :meth:`~DominanceKernel.filter_survivors`.

Selection mirrors the executor seam: every entry point takes an optional
``kernel`` argument (a name or a ready instance), ``None`` resolves through
the process default — ``set_default_kernel`` (the CLI's ``--kernel``), then
``$REPRO_KERNEL``, then ``"scalar"`` — so exporting ``REPRO_KERNEL=block``
flips every default-configured algorithm in the process without touching
call sites.

Every kernel op counts the pairwise dominance tests it performs into the
caller's :class:`~repro.core.dominance.DominanceCounter`, so the paper's
"redundant computation" metric stays comparable across backends.
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

from repro.core.dominance import (
    DominanceCounter,
    dominated_by_any,
    dominates,
    dominates_any,
    validate_points,
)

__all__ = [
    "ENV_KERNEL",
    "KERNEL_NAMES",
    "BlockKernel",
    "DominanceKernel",
    "ScalarKernel",
    "default_kernel_name",
    "get_kernel",
    "make_kernel",
    "set_default_kernel",
    "sort_first_order",
]

#: Recognised kernel names, in documentation order.
KERNEL_NAMES: Tuple[str, ...] = ("scalar", "block")

#: Environment variable naming the default kernel.
ENV_KERNEL = "REPRO_KERNEL"

#: Process-global override installed by the CLI's ``--kernel`` (mirrors the
#: fault-plan default: layers below the CLI build their own algorithm calls,
#: so the flag has to reach them the way ``$REPRO_KERNEL`` would).
_DEFAULT_KERNEL: str | None = None

#: Candidate-chunk rows per block-kernel step.  Bounds the intra-chunk
#: pairwise matrix at ``(1024, 1024, d)`` bools and keeps every broadcast
#: well inside cache-friendly territory.
BLOCK_CHUNK = 1024

#: Window-side chunk rows when filtering a candidate chunk against a large
#: accumulated skyline (memory stays O(BLOCK_CHUNK · WINDOW_CHUNK · d)).
WINDOW_CHUNK = 1024

#: Rows of the accumulated skyline tried before any full-width window pass.
#: Sort-first order front-loads the strongest dominators, so this short
#: prefix kills most of a candidate chunk at a fraction of the broadcast.
_PRESCREEN = 32


def default_kernel_name() -> str:
    """The kernel used when none is requested.

    Resolution order: :func:`set_default_kernel` (CLI ``--kernel``), then
    ``$REPRO_KERNEL``, then ``"scalar"`` — the reference path, keeping
    measurements comparable with every earlier BENCH record unless a run
    opts in to the block backend.
    """
    if _DEFAULT_KERNEL is not None:
        return _DEFAULT_KERNEL
    return os.environ.get(ENV_KERNEL, "").strip().lower() or "scalar"


def set_default_kernel(name: str | None) -> str | None:
    """Install (or with ``None`` clear) the process-default kernel name.

    Returns the previous override so callers can restore it; the CLI wraps
    experiment runs in exactly that save/restore pair.
    """
    global _DEFAULT_KERNEL
    if name is not None:
        name = name.strip().lower()
        if name not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {name!r}; expected one of {', '.join(KERNEL_NAMES)}"
            )
    previous = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = name
    return previous


def sort_first_order(rows: np.ndarray) -> np.ndarray:
    """The Ciaccia–Martinenghi sort-first permutation of ``rows``.

    Monotone entropy score (``Σ ln(1 + v_i - min_i)``) with a full
    lexicographic tiebreak.  The tiebreak is a correctness requirement, not
    cosmetics: floating-point rounding can collapse the scores of ``a`` and
    ``b`` even when ``a`` dominates ``b``, and dominance implies
    lexicographic order, so ties resolved lexicographically preserve the
    SFS invariant that no later point dominates an earlier one.
    """
    pts = validate_points(rows)
    d = pts.shape[1]
    shifted = pts - pts.min(axis=0, keepdims=True)
    scores = np.log1p(shifted).sum(axis=1)
    keys = tuple(pts[:, j] for j in range(d - 1, -1, -1)) + (scores,)
    return np.lexsort(keys)


class DominanceKernel:
    """One backend for the dominance operations of every hot path.

    Subclasses fix *how* the comparisons run (point-at-a-time vs columnar
    batches); results are identical by construction — the skyline of a
    point set is unique, and every op here is a pure function of its
    inputs.  ``batch`` advertises whether the backend wants whole blocks
    (algorithms use it to pick their vectorised fast paths).
    """

    #: Stable backend name used by ``--kernel``, params, and reports.
    name: str = "abstract"
    #: True when ``skyline``/``sweep_sorted`` are vectorised batch ops.
    batch: bool = False

    # -- single-point ops (shared: already one broadcast per call) -------------

    def dominates(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Ground-truth pair predicate (delegates to the scalar reference)."""
        # The one sanctioned direct use of the scalar primitives: the
        # kernels ARE the seam the lint rule points everything else at.
        return dominates(a, b)  # repro: allow[kernel-seam]

    def any_dominates(
        self,
        window: np.ndarray,
        point: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "kernel",
    ) -> bool:
        """True iff any ``window`` row dominates ``point``."""
        if counter is not None:
            counter.add(int(window.shape[0]), stage)
        return dominates_any(window, point)  # repro: allow[kernel-seam]

    def dominated_in(
        self,
        window: np.ndarray,
        point: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "kernel",
    ) -> np.ndarray:
        """Boolean mask over ``window`` rows dominated *by* ``point``."""
        if counter is not None:
            counter.add(int(window.shape[0]), stage)
        return dominated_by_any(window, point)  # repro: allow[kernel-seam]

    # -- counting ops (shared: exact integer results either way) ---------------

    def dominator_counts(
        self,
        rows: np.ndarray,
        *,
        block: int = 2048,
        counter: DominanceCounter | None = None,
        stage: str = "skyband",
    ) -> np.ndarray:
        """Per row: how many other rows dominate it (0 ⟺ skyline member)."""
        pts = validate_points(rows)
        n = pts.shape[0]
        counts = np.zeros(n, dtype=np.int64)
        for start in range(0, n, block):
            chunk = pts[start : start + block]
            le = (pts[:, None, :] <= chunk[None, :, :]).all(axis=2)
            lt = (pts[:, None, :] < chunk[None, :, :]).any(axis=2)
            counts[start : start + chunk.shape[0]] = (le & lt).sum(axis=0)
            if counter is not None:
                counter.add(n * chunk.shape[0], stage)
        return counts

    def dominated_counts(
        self,
        rows: np.ndarray,
        *,
        block: int = 2048,
        counter: DominanceCounter | None = None,
        stage: str = "top-k-dominating",
    ) -> np.ndarray:
        """Per row: how many other rows it dominates (the ranking flavour)."""
        pts = validate_points(rows)
        n = pts.shape[0]
        counts = np.zeros(n, dtype=np.int64)
        for start in range(0, n, block):
            chunk = pts[start : start + block]
            le = (chunk[:, None, :] <= pts[None, :, :]).all(axis=2)
            lt = (chunk[:, None, :] < pts[None, :, :]).any(axis=2)
            counts[start : start + chunk.shape[0]] = (le & lt).sum(axis=1)
            if counter is not None:
                counter.add(n * chunk.shape[0], stage)
        return counts

    # -- batch ops (backend-specific) ------------------------------------------

    def filter_survivors(
        self,
        filters: np.ndarray,
        rows: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "prune",
    ) -> np.ndarray:
        """Mask over ``rows``: True where no ``filters`` row dominates it.

        The broadcast-filter primitive of the Ciaccia–Martinenghi pruning
        pipeline: ``filters`` is the small k-point filter set shipped to
        every partition, ``rows`` an incoming block.
        """
        raise NotImplementedError

    def sweep_sorted(
        self,
        rows: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "sweep",
    ) -> np.ndarray:
        """Skyline mask of ``rows`` **already in a monotone-score order**.

        Precondition (the SFS invariant): no row dominates an earlier row.
        Violating it produces wrong masks — callers sort via
        :func:`sort_first_order` or an equivalent monotone score first.
        """
        raise NotImplementedError

    def skyline(
        self,
        rows: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "skyline",
    ) -> np.ndarray:
        """Ascending row indices of the skyline of ``rows`` (any order)."""
        raise NotImplementedError


class ScalarKernel(DominanceKernel):
    """Point-at-a-time reference backend — the pre-seam semantics.

    Each candidate is one Python-level step: one broadcast comparison
    against whatever window/filter it faces, counting ``len(window)``
    tests, exactly like the classic BNL/SFS inner loops these ops were
    extracted from.  Kept as ground truth for the differential parity
    suite; never the fast path.
    """

    name = "scalar"
    batch = False

    def filter_survivors(
        self,
        filters: np.ndarray,
        rows: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "prune",
    ) -> np.ndarray:
        flt = validate_points(filters, name="filters")
        pts = validate_points(rows)
        alive = np.ones(pts.shape[0], dtype=bool)
        if flt.shape[0] == 0:
            return alive
        for i in range(pts.shape[0]):
            # One candidate against the whole filter set per step — the
            # reference shape of the op.
            alive[i] = not dominates_any(flt, pts[i])  # repro: allow[kernel-seam]
        if counter is not None:
            counter.add(int(flt.shape[0]) * int(pts.shape[0]), stage)
        return alive

    def sweep_sorted(
        self,
        rows: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "sweep",
    ) -> np.ndarray:
        pts = validate_points(rows)
        n, d = pts.shape
        keep = np.zeros(n, dtype=bool)
        window: list[int] = []
        window_buf = np.empty((64, d))
        tests = 0
        for idx in range(n):
            w = len(window)
            if w:
                tests += w
                if dominates_any(window_buf[:w], pts[idx]):  # repro: allow[kernel-seam]
                    continue
            if w == window_buf.shape[0]:
                grown = np.empty((window_buf.shape[0] * 2, d))
                grown[:w] = window_buf[:w]
                window_buf = grown
            window_buf[w] = pts[idx]
            window.append(idx)
            keep[idx] = True
        if counter is not None:
            counter.add(tests, stage)
        return keep

    def skyline(
        self,
        rows: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "skyline",
    ) -> np.ndarray:
        # The classic unbounded-window BNL loop, one candidate per step —
        # identical tests and identical result to bnl_skyline(points).
        pts = validate_points(rows)
        n, d = pts.shape
        window: list[int] = []
        window_buf = np.empty((64, d))
        tests = 0
        for idx in range(n):
            w = len(window)
            if w:
                view = window_buf[:w]
                tests += w
                le = view <= pts[idx]
                le_all = le.all(axis=1)
                lt_any = (view < pts[idx]).any(axis=1)
                if bool(np.any(le_all & lt_any)):
                    continue
                evict = ~lt_any & ~le_all
                if evict.any():
                    keep_mask = ~evict
                    window = [wi for wi, k in zip(window, keep_mask) if k]
                    w = len(window)
                    window_buf[:w] = view[keep_mask]
            if w == window_buf.shape[0]:
                grown = np.empty((window_buf.shape[0] * 2, d))
                grown[:w] = window_buf[:w]
                window_buf = grown
            window_buf[w] = pts[idx]
            window.append(idx)
        if counter is not None:
            counter.add(tests, stage)
        return np.array(sorted(window), dtype=np.intp)


class BlockKernel(DominanceKernel):
    """Columnar batch backend — whole chunks per step.

    Candidates advance ``BLOCK_CHUNK`` rows at a time: the chunk is
    filtered against the accumulated skyline with two chunked broadcast
    comparisons, then intra-chunk dominance resolves in one pairwise
    matrix.  With the sort-first precondition nothing is ever evicted, so
    the accumulated skyline only grows — append-only, no rescans.
    """

    name = "block"
    batch = True

    def filter_survivors(
        self,
        filters: np.ndarray,
        rows: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "prune",
    ) -> np.ndarray:
        flt = validate_points(filters, name="filters")
        pts = validate_points(rows)
        n = pts.shape[0]
        alive = np.ones(n, dtype=bool)
        if flt.shape[0] == 0 or n == 0:
            return alive
        fsum = flt.sum(axis=1)
        psum = pts.sum(axis=1)
        # The filter set arrives ranked strongest-first (the pruning-score
        # order), so an 8-filter prescreen pass kills most rows before the
        # full-width filter broadcast sees the survivors.
        head = min(8, flt.shape[0])
        for start in range(0, n, BLOCK_CHUNK):
            stop = min(start + BLOCK_CHUNK, n)
            chunk = pts[start:stop]
            csum = psum[start:stop]
            live = ~_any_dominates_block(
                flt[:head], chunk, fsum[:head], csum
            )
            if head < flt.shape[0] and live.any():
                idx = np.flatnonzero(live)
                live[idx] = ~_any_dominates_block(
                    flt[head:], chunk[idx], fsum[head:], csum[idx]
                )
            alive[start:stop] = live
        if counter is not None:
            counter.add(int(flt.shape[0]) * n, stage)
        return alive

    def sweep_sorted(
        self,
        rows: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "sweep",
    ) -> np.ndarray:
        pts = validate_points(rows)
        n, d = pts.shape
        keep = np.zeros(n, dtype=bool)
        if n == 0:
            return keep
        sums = pts.sum(axis=1)
        sky_buf = np.empty((min(n, 1024), d))
        sky_sums = np.empty(sky_buf.shape[0])
        sky_len = 0
        tests = 0
        for start in range(0, n, BLOCK_CHUNK):
            stop = min(start + BLOCK_CHUNK, n)
            chunk = pts[start:stop]
            survivors = np.arange(chunk.shape[0])
            surv = chunk
            surv_sums = sums[start:stop]
            # Established skyline first: transitivity makes the intra-chunk
            # resolution below exact over survivors only (a chunk row
            # dominated by a dead chunk row is dominated by whatever killed
            # the dead row — a skyline point — so it is already dead here).
            # Candidates compact out of the working set as soon as they die:
            # the sort-first order puts the strongest dominators at the
            # front of the accumulated skyline, so the first window chunk
            # kills most of a chunk and later broadcasts shrink to almost
            # nothing — the difference between O(n·|sky|) elementwise work
            # and what actually runs.
            # The first window pass runs over a short prefix of the
            # accumulated skyline: sort-first order concentrates the
            # strongest dominators there, so a cheap prescreen pass kills
            # the bulk of the chunk before any full-width broadcast runs.
            wstart = 0
            while wstart < sky_len:
                if survivors.size == 0:
                    break
                width = _PRESCREEN if wstart == 0 else WINDOW_CHUNK
                wstop = min(wstart + width, sky_len)
                dead = _any_dominates_block(
                    sky_buf[wstart:wstop],
                    surv,
                    sky_sums[wstart:wstop],
                    surv_sums,
                )
                tests += (wstop - wstart) * surv.shape[0]
                if dead.any():
                    alive_mask = ~dead
                    survivors = survivors[alive_mask]
                    surv = surv[alive_mask]
                    surv_sums = surv_sums[alive_mask]
                wstart = wstop
            if survivors.size:
                m = surv.shape[0]
                if m > 1:
                    # Pairwise over survivors: the sort order already
                    # forbids j < i wins, but duplicates make the full
                    # both-sides pass the safe shape.
                    intra_alive = ~_any_dominates_block(
                        surv, surv, surv_sums, surv_sums
                    )
                    tests += m * m
                    survivors = survivors[intra_alive]
                    surv = surv[intra_alive]
                    surv_sums = surv_sums[intra_alive]
                    m = surv.shape[0]
                keep[start + survivors] = True
                if sky_len + m > sky_buf.shape[0]:
                    grown = np.empty(
                        (max(sky_buf.shape[0] * 2, sky_len + m), d)
                    )
                    grown[:sky_len] = sky_buf[:sky_len]
                    sky_buf = grown
                    grown_sums = np.empty(sky_buf.shape[0])
                    grown_sums[:sky_len] = sky_sums[:sky_len]
                    sky_sums = grown_sums
                sky_buf[sky_len : sky_len + m] = surv
                sky_sums[sky_len : sky_len + m] = surv_sums
                sky_len += m
        if counter is not None:
            counter.add(tests, stage)
        return keep

    def skyline(
        self,
        rows: np.ndarray,
        *,
        counter: DominanceCounter | None = None,
        stage: str = "skyline",
    ) -> np.ndarray:
        pts = validate_points(rows)
        if pts.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        order = sort_first_order(pts)
        mask = self.sweep_sorted(pts[order], counter=counter, stage=stage)
        return np.sort(order[mask]).astype(np.intp)


def _any_dominates_block(
    window: np.ndarray,
    chunk: np.ndarray,
    wsum: np.ndarray | None = None,
    csum: np.ndarray | None = None,
) -> np.ndarray:
    """Mask over ``chunk`` rows dominated by at least one ``window`` row.

    The ``≤ on every dimension`` part accumulates dimension by dimension
    on 2-D ``(w, c)`` slices — same elementwise work as the obvious
    ``(w, c, d)`` broadcast, but the temporaries fit in cache instead of
    blowing it, which is most of the wall-clock difference.  Strictness
    then rides on row sums: with ``w ≤ c`` elementwise, float summation
    is monotone, so ``sum(w) < sum(c)`` proves a strict dimension and
    ``sum(w) = sum(c)`` leaves only ties — pairs that dominate iff the
    rows differ, resolved exactly on just those (rare) columns.  Callers
    may pass precomputed row sums to amortise them across chunks.
    """
    le = window[:, 0, None] <= chunk[None, :, 0]
    for k in range(1, window.shape[1]):
        le &= window[:, k, None] <= chunk[None, :, k]
        if k == 2 and not le.any():
            return np.zeros(chunk.shape[0], dtype=bool)
    if wsum is None:
        wsum = window.sum(axis=1)
    if csum is None:
        csum = chunk.sum(axis=1)
    dom = le & (wsum[:, None] < csum[None, :])
    dominated = dom.any(axis=0)
    ties = le & ~dom
    pending = ties.any(axis=0) & ~dominated
    if pending.any():
        cols = np.flatnonzero(pending)
        differs = (window[:, None, :] != chunk[cols][None, :, :]).any(axis=2)
        dominated[cols] = (ties[:, cols] & differs).any(axis=0)
    return dominated


_KERNELS: dict[str, DominanceKernel] = {
    "scalar": ScalarKernel(),
    "block": BlockKernel(),
}


def make_kernel(name: str | DominanceKernel | None = None) -> DominanceKernel:
    """Resolve a kernel from a name (or pass an instance through).

    ``None`` resolves via :func:`default_kernel_name`.  Kernels are
    stateless, so the two built-ins are shared singletons — cheap to
    resolve per call and safe to ship through job params.
    """
    if isinstance(name, DominanceKernel):
        return name
    resolved = (name or default_kernel_name()).strip().lower()
    kernel = _KERNELS.get(resolved)
    if kernel is None:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {', '.join(KERNEL_NAMES)}"
        )
    return kernel


#: Alias that reads better at call sites resolving the process default.
get_kernel = make_kernel
