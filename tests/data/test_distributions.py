"""Tests for copula sampling and marginal helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.distributions import (
    _erf,
    _erfinv,
    empirical_quantile,
    gaussian_copula_uniforms,
    nearest_correlation,
    sample_with_marginals,
    truncated_normal,
)


class TestErf:
    def test_known_values(self):
        assert _erf(np.array([0.0]))[0] == pytest.approx(0.0, abs=1e-7)
        assert _erf(np.array([1.0]))[0] == pytest.approx(0.8427007929, abs=2e-7)
        assert _erf(np.array([-1.0]))[0] == pytest.approx(-0.8427007929, abs=2e-7)

    def test_against_scipy(self):
        from scipy.special import erf as scipy_erf

        x = np.linspace(-4, 4, 200)
        assert np.allclose(_erf(x), scipy_erf(x), atol=2e-7)

    def test_erfinv_round_trip(self):
        y = np.linspace(-0.999, 0.999, 100)
        assert np.allclose(_erf(_erfinv(y)), y, atol=1e-6)


class TestNearestCorrelation:
    def test_valid_matrix_unchanged(self):
        m = np.array([[1.0, 0.5], [0.5, 1.0]])
        assert np.allclose(nearest_correlation(m), m, atol=1e-9)

    def test_diagonal_restored(self):
        m = np.array([[1.0, 0.3], [0.3, 1.0]])
        out = nearest_correlation(m)
        assert np.allclose(np.diag(out), 1.0)

    def test_non_psd_projected(self):
        # Correlations (1,2)=0.9, (1,3)=0.9, (2,3)=-0.9 are jointly infeasible.
        m = np.array(
            [[1.0, 0.9, 0.9], [0.9, 1.0, -0.9], [0.9, -0.9, 1.0]]
        )
        out = nearest_correlation(m)
        vals = np.linalg.eigvalsh(out)
        assert vals.min() >= -1e-10
        np.linalg.cholesky(out + 1e-12 * np.eye(3))  # must not raise

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            nearest_correlation(np.ones((2, 3)))


class TestCopula:
    def test_uniform_marginals(self):
        rng = np.random.default_rng(0)
        corr = np.array([[1.0, 0.6], [0.6, 1.0]])
        u = gaussian_copula_uniforms(20_000, corr, rng)
        assert u.shape == (20_000, 2)
        assert 0.0 <= u.min() and u.max() <= 1.0
        for j in range(2):
            assert abs(u[:, j].mean() - 0.5) < 0.02
            assert abs(np.quantile(u[:, j], 0.25) - 0.25) < 0.02

    def test_rank_correlation_matches_target(self):
        rng = np.random.default_rng(1)
        corr = np.array([[1.0, 0.7], [0.7, 1.0]])
        u = gaussian_copula_uniforms(30_000, corr, rng)
        observed = np.corrcoef(u, rowvar=False)[0, 1]
        # Uniform-scale (Spearman-ish) correlation is slightly below the
        # normal-scale target: rho_s = 6/pi * arcsin(rho/2).
        expected = 6 / np.pi * np.arcsin(0.7 / 2)
        assert observed == pytest.approx(expected, abs=0.03)

    def test_independent_when_identity(self):
        rng = np.random.default_rng(2)
        u = gaussian_copula_uniforms(20_000, np.eye(3), rng)
        c = np.corrcoef(u, rowvar=False)
        off = c[~np.eye(3, dtype=bool)]
        assert np.abs(off).max() < 0.03


class TestSampleWithMarginals:
    def test_marginals_applied(self):
        rng = np.random.default_rng(3)
        out = sample_with_marginals(
            5_000,
            [lambda u: u * 10, lambda u: 100 - u * 100],
            np.eye(2),
            rng,
        )
        assert 0 <= out[:, 0].min() and out[:, 0].max() <= 10
        assert 0 <= out[:, 1].min() and out[:, 1].max() <= 100

    def test_mismatched_marginal_count(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            sample_with_marginals(10, [lambda u: u], np.eye(2), rng)

    def test_no_exact_zero_or_one_uniforms(self):
        rng = np.random.default_rng(5)
        captured = {}

        def probe(u):
            captured["u"] = u
            return u

        sample_with_marginals(50_000, [probe], np.eye(1), rng)
        assert captured["u"].min() > 0.0
        assert captured["u"].max() < 1.0


class TestTruncatedNormal:
    def test_within_bounds(self):
        u = np.linspace(0.001, 0.999, 500)
        out = truncated_normal(u, 50, 20, 0, 100)
        assert out.min() >= 0 and out.max() <= 100

    def test_monotone_in_u(self):
        u = np.linspace(0.01, 0.99, 100)
        out = truncated_normal(u, 0, 1, -10, 10)
        assert np.all(np.diff(out) >= 0)

    def test_median_at_mean(self):
        out = truncated_normal(np.array([0.5]), 7.0, 3.0, -100, 100)
        assert out[0] == pytest.approx(7.0, abs=1e-6)


class TestEmpiricalQuantile:
    def test_reproduces_sample_range(self):
        sample = np.array([1.0, 2.0, 5.0, 10.0])
        q = empirical_quantile(sample)
        u = np.linspace(0, 1, 100)
        out = q(u)
        assert out.min() >= 1.0 and out.max() <= 10.0

    def test_median(self):
        sample = np.arange(1001, dtype=float)
        q = empirical_quantile(sample)
        assert q(np.array([0.5]))[0] == pytest.approx(500, abs=1)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            empirical_quantile(np.array([]))

    @given(
        data=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50),
        u=st.floats(0, 1),
    )
    @settings(max_examples=60)
    def test_property_output_within_hull(self, data, u):
        q = empirical_quantile(np.array(data))
        out = q(np.array([u]))[0]
        assert min(data) - 1e-9 <= out <= max(data) + 1e-9
