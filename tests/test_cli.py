"""Tests for the command-line front end."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_formats_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["theory", "--markdown", "--csv"])

    @pytest.mark.parametrize(
        "name",
        [
            "fig5a",
            "fig5b",
            "fig6",
            "fig7a",
            "fig7b",
            "headline",
            "theory",
            "ablations",
            "stragglers",
            "all",
        ],
    )
    def test_known_experiments_parse(self, name):
        args = build_parser().parse_args([name])
        assert args.experiment == name


class TestMain:
    def test_theory_runs(self, capsys):
        assert main(["theory", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "dominance ability" in out
        assert "True" in out

    def test_quick_fig5a(self, capsys):
        assert main(["fig5a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out
        assert "MR-Angle" in out

    def test_markdown_output(self, capsys):
        assert main(["theory", "--quick", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "|---" in out

    def test_csv_output(self, capsys):
        assert main(["theory", "--quick", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "x,y,D_angle_eq3" in out


class TestOutputFile:
    def test_output_file_appended(self, tmp_path, capsys):
        target = tmp_path / "tables.txt"
        assert main(["theory", "--quick", "--output", str(target)]) == 0
        assert main(["theory", "--quick", "--output", str(target)]) == 0
        content = target.read_text()
        assert content.count("dominance ability") == 2

    def test_stragglers_quick(self, capsys):
        assert main(["stragglers", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "speculative" in out


class TestModuleEntry:
    def test_python_dash_m(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "theory", "--quick", "--csv"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0
        assert "D_angle_eq3" in proc.stdout


class TestServeCommand:
    def test_invalid_config_exits_2(self, capsys):
        assert main(["serve", "--max-inflight", "0"]) == 2
        assert "max_inflight" in capsys.readouterr().err

    def test_bad_tcp_spec_exits_2(self, capsys):
        assert main(["serve", "--tcp", "not-a-port"]) == 2
        assert "cannot bind" in capsys.readouterr().err

    def test_help_mentions_protocol(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        assert "JSON-lines" in capsys.readouterr().out


class TestBenchCommand:
    def test_bench_writes_json_record(self, tmp_path, capsys, monkeypatch):
        import repro.bench.perf as perf

        stub = {
            "schema_version": perf.SCHEMA_VERSION,
            "suite": "repro-bench",
            "quick": True,
            "executor": "serial",
            "engine": [],
            "serving": {"n": 1, "d": 1, "repeats": 1, "skyline_size": 1,
                        "cold_skyline_s": 0.0, "warm_cache_hit_s": 0.0,
                        "insert_requery_s": 0.0, "cold_skyband_s": 0.0,
                        "cache": {}},
            "suite_wall_s": 0.0,
        }
        monkeypatch.setattr(perf, "perf_trajectory", lambda **kw: stub)
        monkeypatch.setattr(perf, "render_trajectory", lambda record: "rendered")
        target = tmp_path / "BENCH_test.json"
        assert main(["bench", "--quick", "--json", str(target)]) == 0
        out = capsys.readouterr().out
        assert "rendered" in out and str(target) in out
        import json

        assert json.loads(target.read_text())["suite"] == "repro-bench"

    def test_unwritable_json_target_exits_1(self, tmp_path, monkeypatch, capsys):
        import repro.bench.perf as perf

        monkeypatch.setattr(
            perf, "perf_trajectory",
            lambda **kw: {"quick": True, "engine": [], "serving": {}},
        )
        monkeypatch.setattr(perf, "render_trajectory", lambda record: "")
        target = tmp_path / "missing-dir" / "out.json"
        assert main(["bench", "--json", str(target)]) == 1
        assert "cannot write" in capsys.readouterr().err
