"""Tests for job history events and the ASCII Gantt renderer."""

import pytest

from repro.mapreduce import Job, JobConf, Mapper, Reducer, run_job
from repro.mapreduce.cluster import ClusterSpec
from repro.mapreduce.history import job_events, render_gantt
from repro.mapreduce.types import TaskKind


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


@pytest.fixture(scope="module")
def result():
    job = Job(
        name="wc",
        mapper=TokenMapper,
        reducer=SumReducer,
        conf=JobConf(num_reducers=3, num_map_tasks=5),
    )
    records = [(None, "a b c d " * 20) for _ in range(100)]
    return run_job(job, records=records)


CLUSTER = ClusterSpec(num_nodes=2, task_launch_s=0.5, speed_factor=100.0)


class TestEvents:
    def test_all_tasks_present(self, result):
        events = job_events(result, CLUSTER)
        ids = {e.task_id for e in events}
        assert ids == {f"map-{i}" for i in range(5)} | {
            f"reduce-{i}" for i in range(3)
        }

    def test_sorted_by_start(self, result):
        events = job_events(result, CLUSTER)
        starts = [e.start_s for e in events]
        assert starts == sorted(starts)

    def test_reduce_after_map(self, result):
        events = job_events(result, CLUSTER)
        map_end = max(e.end_s for e in events if e.kind is TaskKind.MAP)
        reduce_start = min(e.start_s for e in events if e.kind is TaskKind.REDUCE)
        assert reduce_start >= map_end - 1e-9

    def test_slots_within_cluster(self, result):
        events = job_events(result, CLUSTER)
        for e in events:
            limit = CLUSTER.map_slots if e.kind is TaskKind.MAP else CLUSTER.reduce_slots
            assert 0 <= e.slot < limit

    def test_durations_positive(self, result):
        for e in job_events(result, CLUSTER):
            assert e.end_s > e.start_s


class TestGantt:
    def test_renders_rows_per_slot(self, result):
        chart = render_gantt(result, CLUSTER, width=40)
        lines = chart.splitlines()
        # header + map slots + reduce slots + axis
        assert len(lines) == 1 + CLUSTER.map_slots + CLUSTER.reduce_slots + 1
        assert "wc" in lines[0]

    def test_glyphs_present(self, result):
        chart = render_gantt(result, CLUSTER)
        assert "m" in chart and "R" in chart

    def test_width_respected(self, result):
        chart = render_gantt(result, CLUSTER, width=30)
        bars = [l for l in chart.splitlines() if "|" in l]
        for line in bars:
            inner = line.split("|")[1]
            assert len(inner) == 30

    def test_bad_width(self, result):
        with pytest.raises(ValueError):
            render_gantt(result, CLUSTER, width=5)

    def test_empty_job(self):
        job = Job(name="empty", mapper=TokenMapper, reducer=SumReducer)
        res = run_job(job, records=[])
        chart = render_gantt(res, CLUSTER)
        assert "empty" in chart
