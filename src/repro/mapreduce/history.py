"""Job history: structured events and ASCII timelines for simulated runs.

Hadoop's JobHistory answers "what actually happened on the cluster".  Our
equivalent reconstructs a per-slot timeline from a measured
:class:`~repro.mapreduce.job.JobResult` replayed on a
:class:`~repro.mapreduce.cluster.ClusterSpec`, producing

* a flat, sorted event list (task start/finish per phase), and
* an ASCII Gantt chart of the slot schedule — handy for eyeballing load
  imbalance (the dim/grid pathology of Figure 5b is immediately visible as
  one long reduce bar).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.mapreduce.cluster import ClusterSpec
from repro.mapreduce.job import JobResult
from repro.mapreduce.scheduler import Schedule, schedule_tasks
from repro.mapreduce.types import TaskKind

__all__ = ["TaskEvent", "job_events", "render_gantt"]


@dataclass(frozen=True, slots=True)
class TaskEvent:
    """One task's simulated placement."""

    job_name: str
    task_id: str
    kind: TaskKind
    slot: int
    start_s: float
    end_s: float


def _phase_schedule(result: JobResult, kind: TaskKind, cluster: ClusterSpec) -> Schedule:
    tasks = (result.map_stats if kind is TaskKind.MAP else result.reduce_stats).tasks
    slots = cluster.map_slots if kind is TaskKind.MAP else cluster.reduce_slots
    return schedule_tasks(
        [t.duration_s * cluster.speed_factor for t in tasks],
        slots,
        policy=cluster.scheduling_policy,
        per_task_overhead_s=cluster.task_launch_s,
    )


def job_events(result: JobResult, cluster: ClusterSpec) -> List[TaskEvent]:
    """Simulated task placements, sorted by start time.

    Reduce-phase times are offset so they begin when the map phase ends
    (the engine's phases are sequential, as in Hadoop without slow-start).
    """
    events: List[TaskEvent] = []
    map_schedule = _phase_schedule(result, TaskKind.MAP, cluster)
    for placed in map_schedule.tasks:
        stats = result.map_stats.tasks[placed.task_index]
        events.append(
            TaskEvent(
                job_name=result.job_name,
                task_id=stats.task_id,
                kind=TaskKind.MAP,
                slot=placed.slot,
                start_s=placed.start_s,
                end_s=placed.end_s,
            )
        )
    offset = map_schedule.makespan_s
    reduce_schedule = _phase_schedule(result, TaskKind.REDUCE, cluster)
    for placed in reduce_schedule.tasks:
        stats = result.reduce_stats.tasks[placed.task_index]
        events.append(
            TaskEvent(
                job_name=result.job_name,
                task_id=stats.task_id,
                kind=TaskKind.REDUCE,
                slot=placed.slot,
                start_s=offset + placed.start_s,
                end_s=offset + placed.end_s,
            )
        )
    return sorted(events, key=lambda e: (e.start_s, e.slot))


def render_gantt(
    result: JobResult,
    cluster: ClusterSpec,
    *,
    width: int = 72,
) -> str:
    """ASCII Gantt chart of the simulated slot schedule.

    Map tasks render as ``m``, reduce tasks as ``R``; one row per (phase,
    slot).  The time axis is scaled to ``width`` characters.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    events = job_events(result, cluster)
    if not events:
        return f"{result.job_name}: (no tasks)\n"
    horizon = max(e.end_s for e in events)
    if horizon <= 0:
        horizon = 1e-9
    scale = width / horizon

    lines = [f"{result.job_name}  (simulated on {cluster.num_nodes} nodes, "
             f"{horizon:.2f}s horizon)"]
    for kind, glyph, slots in (
        (TaskKind.MAP, "m", cluster.map_slots),
        (TaskKind.REDUCE, "R", cluster.reduce_slots),
    ):
        for slot in range(slots):
            row = [" "] * width
            for e in events:
                if e.kind is not kind or e.slot != slot:
                    continue
                lo = min(int(e.start_s * scale), width - 1)
                hi = min(max(int(e.end_s * scale), lo + 1), width)
                for i in range(lo, hi):
                    row[i] = glyph
            lines.append(f"{kind.value:>6}[{slot:02d}] |{''.join(row)}|")
    lines.append(
        f"{'':>10} 0s{'':{width - 8}}{horizon:.1f}s"
    )
    return "\n".join(lines) + "\n"
