"""Design-choice ablations (DESIGN.md §4, last row).

Covers: the 2×workers partition rule, angular binning/allocation variants,
the map-side combiner, bounded BNL windows, grid-cell pruning, quantile
variants of the baselines, and the random-partitioning baseline.
"""

from repro.bench.experiments import ablations


def test_ablations(benchmark, scale, cache):
    table = benchmark.pedantic(
        lambda: ablations(
            n=min(scale.large_n, 10_000),
            d=6,
            cluster=scale.cluster,
            cache=cache,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    rows = {row[0]: row for row in table.rows}
    variant_col = table.columns.index("variant")
    time_col = table.columns.index("sim_total_s")
    imb_col = table.columns.index("imbalance")
    opt_col = table.columns.index("optimality")

    # Quantile sectors balance load essentially perfectly.
    assert rows["angle (2x workers, quantile)"][imb_col] < 1.2
    # Equal-width sectors trade balance for optimality.
    assert (
        rows["angle equal-width bins"][opt_col]
        > rows["angle (2x workers, quantile)"][opt_col]
    )
    assert (
        rows["angle equal-width bins"][imb_col]
        > rows["angle (2x workers, quantile)"][imb_col]
    )
    # Fewer partitions -> higher optimality (less fragmentation).
    assert rows["angle 1x workers"][opt_col] >= rows["angle 4x workers"][opt_col]
    # Grid-cell pruning never hurts the grid method.
    assert (
        rows["grid (with pruning)"][time_col]
        <= rows["grid (no cell pruning)"][time_col] * 1.05
    )
