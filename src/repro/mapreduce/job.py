"""Job definition and results.

A :class:`Job` bundles the user's mapper / combiner / reducer *classes*
(instantiated per task, so they stay picklable for multiprocessing) with a
:class:`JobConf`.  :class:`JobResult` carries outputs plus everything the
evaluation needs: merged counters, per-task :class:`TaskStats`, shuffle
volume, and measured wall-clock per phase — the inputs to both the paper's
Figure 5 (processing time) and Figure 6 (map/reduce breakdown via the
cluster simulator).

Two-job pipelines (partition+local-skyline then global-merge, Algorithm 1 of
the paper) are expressed with :class:`JobChain`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, List, Sequence, Tuple, Type

from repro.mapreduce.counters import Counters
from repro.mapreduce.errors import JobConfigError
from repro.mapreduce.partitioner import HashPartitioner, Partitioner
from repro.mapreduce.shuffle import ShuffleStats
from repro.mapreduce.tasks import Mapper, Reducer
from repro.mapreduce.types import PhaseStats, TaskKind

Pair = Tuple[Hashable, Any]


@dataclass(slots=True)
class JobConf:
    """Execution knobs for one job.

    Attributes
    ----------
    num_reducers:
        Number of reduce partitions/tasks ``R``.
    num_map_tasks:
        Split-count hint for in-memory inputs (file inputs derive splits
        from block boundaries instead).
    partitioner:
        Key-routing policy; defaults to :class:`HashPartitioner`.
    spill_records:
        Map-side buffer size that triggers an early combiner pass; ``0``
        runs the combiner only once at task end.
    sort_keys:
        Whether the shuffle sorts keys (Hadoop semantics; on by default).
    params:
        Arbitrary user parameters delivered to every task's ``setup``.
    spill_dir / spill_threshold_records:
        Enable the external-sort shuffle path for oversized partitions.
    """

    num_reducers: int = 1
    num_map_tasks: int = 1
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    spill_records: int = 0
    sort_keys: bool = True
    params: Dict[str, Any] = field(default_factory=dict)
    spill_dir: str | None = None
    spill_threshold_records: int = 0

    def validate(self) -> None:
        if self.num_reducers <= 0:
            raise JobConfigError(f"num_reducers must be >= 1, got {self.num_reducers}")
        if self.num_map_tasks <= 0:
            raise JobConfigError(
                f"num_map_tasks must be >= 1, got {self.num_map_tasks}"
            )
        if self.spill_records < 0:
            raise JobConfigError(f"spill_records must be >= 0, got {self.spill_records}")
        if not isinstance(self.partitioner, Partitioner):
            raise JobConfigError(
                f"partitioner must be a Partitioner, got {type(self.partitioner)!r}"
            )


@dataclass(slots=True)
class Job:
    """One MapReduce job: classes + configuration."""

    name: str
    mapper: Type[Mapper]
    reducer: Type[Reducer]
    conf: JobConf = field(default_factory=JobConf)
    combiner: Type[Reducer] | None = None

    def validate(self) -> None:
        self.conf.validate()
        if not (isinstance(self.mapper, type) and issubclass(self.mapper, Mapper)):
            raise JobConfigError(f"mapper must be a Mapper subclass, got {self.mapper!r}")
        if not (isinstance(self.reducer, type) and issubclass(self.reducer, Reducer)):
            raise JobConfigError(
                f"reducer must be a Reducer subclass, got {self.reducer!r}"
            )
        if self.combiner is not None and not (
            isinstance(self.combiner, type) and issubclass(self.combiner, Reducer)
        ):
            raise JobConfigError(
                f"combiner must be a Reducer subclass, got {self.combiner!r}"
            )


@dataclass(slots=True)
class JobResult:
    """Everything produced by one executed job."""

    job_name: str
    outputs: List[List[Pair]]
    counters: Counters
    map_stats: PhaseStats
    reduce_stats: PhaseStats
    shuffle_stats: ShuffleStats
    map_wall_s: float = 0.0
    shuffle_wall_s: float = 0.0
    reduce_wall_s: float = 0.0
    #: Name of the executor the job ran under ("serial" / "threads" / ...).
    executor: str = "serial"
    #: True when a degraded-mode run lost at least one task terminally: the
    #: outputs are then a *subset* of the complete answer.
    partial: bool = False
    #: Task ids ("map-3", "reduce-0") whose retries were exhausted under
    #: ``RetryPolicy(on_lost="degrade")``; empty for complete results.
    lost_partitions: List[str] = field(default_factory=list)

    @property
    def wall_s(self) -> float:
        """Total measured wall-clock across the three phases."""
        return self.map_wall_s + self.shuffle_wall_s + self.reduce_wall_s

    def require_complete(self) -> "JobResult":
        """Return ``self`` unless this result is partial.

        Degraded mode trades a raise at run time for a flag on the result;
        callers that cannot tolerate a partial skyline call this to get the
        raise back (:class:`~repro.mapreduce.errors.PartitionLostError`).
        """
        if self.partial:
            from repro.mapreduce.errors import PartitionLostError

            raise PartitionLostError(self.job_name, self.lost_partitions)
        return self

    def output_pairs(self) -> Iterator[Pair]:
        """All output pairs across reduce partitions, partition order."""
        for part in self.outputs:
            yield from part

    def output_values(self) -> Iterator[Any]:
        for _, value in self.output_pairs():
            yield value

    def summary(self) -> Dict[str, Any]:
        """Compact dict for logs and EXPERIMENTS.md tables."""
        return {
            "job": self.job_name,
            "executor": self.executor,
            "map_tasks": len(self.map_stats),
            "reduce_tasks": len(self.reduce_stats),
            "map_busy_s": round(self.map_stats.busy_s, 6),
            "reduce_busy_s": round(self.reduce_stats.busy_s, 6),
            "shuffle_records": self.shuffle_stats.records,
            "shuffle_bytes": self.shuffle_stats.bytes,
            "wall_s": round(self.wall_s, 6),
            "output_records": sum(len(p) for p in self.outputs),
        }


@dataclass(slots=True)
class ChainResult:
    """Results of a :class:`JobChain`, in execution order."""

    results: List[JobResult]

    @property
    def final(self) -> JobResult:
        if not self.results:
            raise ValueError("empty chain result")
        return self.results[-1]

    @property
    def wall_s(self) -> float:
        return sum(r.wall_s for r in self.results)

    @property
    def partial(self) -> bool:
        """True when any stage ran degraded and lost a task."""
        return any(r.partial for r in self.results)

    @property
    def lost_partitions(self) -> List[str]:
        """Lost task ids across all stages, prefixed with the job name."""
        return [
            f"{r.job_name}/{task_id}"
            for r in self.results
            for task_id in r.lost_partitions
        ]

    def phase_stats(self, kind: TaskKind) -> PhaseStats:
        """Concatenated task stats of one kind across all chained jobs."""
        merged = PhaseStats(kind=kind)
        for result in self.results:
            source = result.map_stats if kind is TaskKind.MAP else result.reduce_stats
            merged.tasks.extend(source.tasks)
        return merged


class JobChain:
    """A linear pipeline where job *k+1* maps over job *k*'s output pairs.

    Each stage is a builder ``records -> Job`` so stages can size themselves
    (e.g. split counts) from the actual intermediate data.  The first builder
    receives the chain's input records.

    ``pipelined=True`` asks the runner to overlap adjacent jobs: job *k+1*'s
    map task *i* consumes job *k*'s reduce partition *i* as soon as that
    reducer finishes (no inter-job barrier).  Builders after the first are
    then called with an *empty* record list — the intermediate data is still
    in flight — so pipelined stages must size themselves from configuration,
    not from ``len(records)``.  Outputs are identical either way.
    """

    def __init__(
        self,
        name: str,
        stages: Sequence[Callable[[List[Pair]], Job]],
        *,
        pipelined: bool = False,
    ):
        if not stages:
            raise JobConfigError("JobChain needs at least one stage")
        self.name = name
        self.stages = list(stages)
        self.pipelined = pipelined

    def __len__(self) -> int:
        return len(self.stages)
