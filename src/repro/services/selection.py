"""QoS-based service selection on top of the skyline pipeline.

The end-user API of the paper's motivating scenario: given a set of
candidate services, return the QoS-optimal (skyline) ones, optionally ranked
by a user utility over normalised attributes.  Selection can run on a single
machine or through any of the three MapReduce algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.core.mr_skyline import run_mr_skyline
from repro.core.skyline import skyline as local_skyline
from repro.services.qws import ServiceDataset

__all__ = ["SelectionResult", "select_services", "rank_by_utility"]

Mode = Literal["local", "mr-dim", "mr-grid", "mr-angle"]

_MR_METHODS = {"mr-dim": "dim", "mr-grid": "grid", "mr-angle": "angle"}


@dataclass(frozen=True, slots=True)
class SelectionResult:
    """Outcome of a selection query."""

    indices: np.ndarray  # dataset row indices of the skyline services
    dims: int
    mode: str

    def __len__(self) -> int:
        return int(self.indices.size)


def select_services(
    dataset: ServiceDataset,
    *,
    dims: int | None = None,
    mode: Mode = "local",
    num_workers: int = 4,
) -> SelectionResult:
    """Return the skyline services of ``dataset`` over its first ``dims``
    attributes.

    ``mode="local"`` runs single-machine BNL; the ``mr-*`` modes run the
    corresponding MapReduce pipeline (useful when the candidate set is
    large or the caller wants the distributed code path end to end).
    """
    dims = dims or dataset.num_attributes
    matrix = dataset.qos_matrix(dims)
    if mode == "local":
        idx = local_skyline(matrix, algorithm="bnl")
    elif mode in _MR_METHODS:
        result = run_mr_skyline(
            matrix, method=_MR_METHODS[mode], num_workers=num_workers
        )
        idx = result.global_indices
    else:
        raise ValueError(
            f"unknown mode {mode!r}; choose 'local' or one of {sorted(_MR_METHODS)}"
        )
    return SelectionResult(indices=idx, dims=dims, mode=mode)


def rank_by_utility(
    dataset: ServiceDataset,
    selection: SelectionResult,
    weights: Sequence[float] | None = None,
) -> np.ndarray:
    """Order selected services by a weighted additive utility (best first).

    Attributes are min-max normalised over the *selected* services in the
    minimisation orientation, so utility = −Σ wᵢ·normᵢ; ``weights`` defaults
    to uniform.  Ties keep dataset order (stable sort).
    """
    if len(selection) == 0:
        return np.empty(0, dtype=np.intp)
    matrix = dataset.qos_matrix(selection.dims)[selection.indices]
    weights_arr = (
        np.full(matrix.shape[1], 1.0 / matrix.shape[1])
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    if weights_arr.shape != (matrix.shape[1],):
        raise ValueError(
            f"weights shape {weights_arr.shape} does not match {matrix.shape[1]} dims"
        )
    if (weights_arr < 0).any():
        raise ValueError("weights must be non-negative")
    lo = matrix.min(axis=0)
    span = matrix.max(axis=0) - lo
    span[span == 0] = 1.0
    norm = (matrix - lo) / span
    cost = norm @ weights_arr
    order = np.argsort(cost, kind="stable")
    return selection.indices[order]
