"""Tests for Pareto-dominance primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.dominance import (
    DominanceCounter,
    dominance_matrix,
    dominated_by_any,
    dominated_mask,
    dominates,
    dominates_any,
    incomparable,
    validate_points,
)

points_2d = arrays(
    np.float64,
    st.tuples(st.integers(1, 40), st.integers(1, 5)),
    elements=st.floats(0, 100, allow_nan=False),
)


class TestScalarPredicates:
    def test_strict_dominance(self):
        assert dominates(np.array([1.0, 1.0]), np.array([2.0, 2.0]))

    def test_equal_in_some_dims_still_dominates(self):
        assert dominates(np.array([1.0, 1.0]), np.array([1.0, 2.0]))

    def test_identical_points_do_not_dominate(self):
        p = np.array([1.0, 2.0])
        assert not dominates(p, p)

    def test_incomparable_pair(self):
        a, b = np.array([1.0, 3.0]), np.array([3.0, 1.0])
        assert incomparable(a, b)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_antisymmetry(self):
        a, b = np.array([1.0, 1.0]), np.array([2.0, 0.5])
        assert not (dominates(a, b) and dominates(b, a))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates(np.array([1.0]), np.array([1.0, 2.0]))

    @given(
        a=arrays(np.float64, 4, elements=st.floats(0, 10, allow_nan=False)),
        b=arrays(np.float64, 4, elements=st.floats(0, 10, allow_nan=False)),
        c=arrays(np.float64, 4, elements=st.floats(0, 10, allow_nan=False)),
    )
    @settings(max_examples=100)
    def test_property_transitivity(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(
        a=arrays(np.float64, 3, elements=st.floats(0, 10, allow_nan=False)),
        b=arrays(np.float64, 3, elements=st.floats(0, 10, allow_nan=False)),
    )
    @settings(max_examples=100)
    def test_property_irreflexive_antisymmetric(self, a, b):
        assert not dominates(a, a)
        assert not (dominates(a, b) and dominates(b, a))


class TestValidatePoints:
    def test_coerces_1d_to_row(self):
        out = validate_points([1.0, 2.0])
        assert out.shape == (1, 2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            validate_points(np.array([[1.0, np.nan]]))

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            validate_points(np.zeros((2, 2, 2)))

    def test_rejects_zero_columns(self):
        with pytest.raises(ValueError):
            validate_points(np.zeros((3, 0)))

    def test_returns_float64(self):
        out = validate_points(np.array([[1, 2]], dtype=np.int32))
        assert out.dtype == np.float64

    def test_infinite_values_allowed(self):
        out = validate_points(np.array([[np.inf, 1.0]]))
        assert np.isinf(out[0, 0])


class TestVectorKernels:
    def test_dominates_any(self):
        window = np.array([[5.0, 5.0], [1.0, 1.0]])
        assert dominates_any(window, np.array([2.0, 2.0]))
        assert not dominates_any(window, np.array([0.5, 0.5]))

    def test_dominates_any_empty_window(self):
        assert not dominates_any(np.empty((0, 2)), np.array([1.0, 1.0]))

    def test_dominated_by_any(self):
        window = np.array([[5.0, 5.0], [1.0, 1.0], [0.2, 9.0]])
        mask = dominated_by_any(window, np.array([1.0, 1.0]))
        assert mask.tolist() == [True, False, False]

    def test_dominated_by_any_empty(self):
        assert dominated_by_any(np.empty((0, 3)), np.zeros(3)).shape == (0,)

    @given(points_2d)
    @settings(max_examples=60)
    def test_property_kernels_match_scalar(self, pts):
        probe = pts[0]
        window = pts[1:] if pts.shape[0] > 1 else np.empty((0, pts.shape[1]))
        expect_any = any(dominates(w, probe) for w in window)
        assert dominates_any(window, probe) == expect_any
        expect_mask = [dominates(probe, w) for w in window]
        assert dominated_by_any(window, probe).tolist() == expect_mask


class TestDominanceMatrix:
    def test_small_example(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0]])
        m = dominance_matrix(pts)
        assert m[0, 1] and not m[1, 0]
        assert not m[0, 2] and not m[2, 0]
        assert not m.diagonal().any()

    @given(points_2d)
    @settings(max_examples=40)
    def test_property_matches_scalar(self, pts):
        m = dominance_matrix(pts)
        n = pts.shape[0]
        for i in range(min(n, 6)):
            for j in range(min(n, 6)):
                assert m[i, j] == dominates(pts[i], pts[j])


class TestDominatedMask:
    def test_matches_matrix(self):
        rng = np.random.default_rng(3)
        pts = rng.random((200, 3))
        m = dominance_matrix(pts)
        assert np.array_equal(dominated_mask(pts), m.any(axis=0))

    @pytest.mark.parametrize("block", [1, 7, 64, 10_000])
    def test_block_size_invariant(self, block):
        rng = np.random.default_rng(4)
        pts = rng.random((150, 4))
        assert np.array_equal(
            dominated_mask(pts, block=block), dominated_mask(pts)
        )

    def test_duplicates_not_dominated(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert dominated_mask(pts).tolist() == [False, False]

    def test_counter_accumulates(self):
        counter = DominanceCounter()
        dominated_mask(np.random.default_rng(0).random((50, 2)), counter=counter)
        assert counter.tests == 2500
        assert counter.by_stage["dominated_mask"] == 2500


class TestDominanceCounter:
    def test_merge(self):
        a, b = DominanceCounter(), DominanceCounter()
        a.add(10, "x")
        b.add(5, "x")
        b.add(2, "y")
        a.merge(b)
        assert a.tests == 17
        assert a.by_stage == {"x": 15, "y": 2}
