"""Per-function control-flow graphs and a forward dataflow driver.

The CFG decomposes a function body into basic blocks of *events*.  An
event is either a plain statement or a ``with``-region boundary::

    ("stmt", <ast.stmt>)          one simple statement (or compound header)
    ("with_enter", <ast.With>)    control entered the with-region
    ("with_exit", <ast.With>)     control left it (any path)

``with`` regions get explicit enter/exit pseudo-events because the lock
analysis interprets them as acquire/release of the context locks; every
structured early exit (``return`` / ``raise`` / ``break`` / ``continue``)
routes through the exits of the with-regions it unwinds, so a lock never
appears held past its region on any CFG path.

Branching is modelled for ``if``/``while``/``for``/``try``/``match``;
``try`` handlers are reachable from the start *and* the end of the guarded
body (an exception may fire anywhere inside it — the may-analysis
over-approximation), and ``finally`` joins every path.

:func:`dataflow_forward` runs any monotone forward analysis to a fixpoint
over the block graph and returns the input state of every event — which
is all the lock rules need ("what is held *when* this happens").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Tuple, TypeVar

__all__ = ["CFG", "BasicBlock", "Event", "dataflow_forward"]

#: ("stmt" | "with_enter" | "with_exit", node)
Event = Tuple[str, ast.AST]

#: Safety valve: dataflow iterations before declaring non-convergence.
_MAX_PASSES = 64


@dataclass(slots=True)
class BasicBlock:
    """A straight-line run of events plus its successor block ids."""

    block_id: int
    events: List[Event] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    def link(self, other: int) -> None:
        if other not in self.successors:
            self.successors.append(other)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self.entry = self._new_block().block_id
        self.exit = self._new_block().block_id

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_function(cls, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> "CFG":
        cfg = cls()
        builder = _Builder(cfg)
        last = builder.build_body(fn.body, cfg.entry)
        cfg.blocks[last].link(cfg.exit)
        return cfg

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks[block.block_id] = block
        return block

    def events(self) -> Iterator[Event]:
        """Every event, in block-id order (deterministic, not execution order)."""
        for block_id in sorted(self.blocks):
            yield from self.blocks[block_id].events


@dataclass(slots=True)
class _LoopFrame:
    """Targets for ``break``/``continue`` plus the with-regions to unwind."""

    header: int
    after: int
    with_depth: int


class _Builder:
    """Structured-statement walk producing blocks and edges."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.loops: List[_LoopFrame] = []
        #: Stack of (With node, exit-emitting) regions currently open —
        #: early exits emit a "with_exit" for each one they unwind.
        self.withs: List[ast.With | ast.AsyncWith] = []

    # Every build_* method takes the current block id and returns the block
    # id where control continues (a block that may already be terminated —
    # terminated blocks simply collect no further successors' events).

    def build_body(self, body: List[ast.stmt], current: int) -> int:
        for stmt in body:
            current = self.build_stmt(stmt, current)
        return current

    def build_stmt(self, stmt: ast.stmt, current: int) -> int:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._block(current).events.append(("stmt", stmt))
            self._unwind_withs(current, 0)
            self._block(current).link(self.cfg.exit)
            return self._dead_block()
        if isinstance(stmt, (ast.Break, ast.Continue)):
            self._block(current).events.append(("stmt", stmt))
            if self.loops:
                frame = self.loops[-1]
                self._unwind_withs(current, frame.with_depth)
                target = (
                    frame.after if isinstance(stmt, ast.Break) else frame.header
                )
                self._block(current).link(target)
            else:  # malformed code; degrade to fall-through
                self._block(current).link(self.cfg.exit)
            return self._dead_block()
        # Nested defs are opaque statements here: their bodies get CFGs of
        # their own when (and if) the analysis reaches them via calls.
        self._block(current).events.append(("stmt", stmt))
        return current

    # -- compound statements ------------------------------------------------------

    def _build_if(self, stmt: ast.If, current: int) -> int:
        self._block(current).events.append(("stmt", stmt))
        then_entry = self._new_linked(current)
        then_end = self.build_body(stmt.body, then_entry)
        join = self.cfg._new_block().block_id
        self._block(then_end).link(join)
        if stmt.orelse:
            else_entry = self._new_linked(current)
            else_end = self.build_body(stmt.orelse, else_entry)
            self._block(else_end).link(join)
        else:
            self._block(current).link(join)
        return join

    def _build_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: int
    ) -> int:
        header = self._new_linked(current)
        self._block(header).events.append(("stmt", stmt))
        after = self.cfg._new_block().block_id
        self.loops.append(_LoopFrame(header, after, len(self.withs)))
        body_entry = self._new_linked(header)
        body_end = self.build_body(stmt.body, body_entry)
        self._block(body_end).link(header)  # back edge
        self.loops.pop()
        if stmt.orelse:
            else_entry = self._new_linked(header)
            else_end = self.build_body(stmt.orelse, else_entry)
            self._block(else_end).link(after)
        else:
            self._block(header).link(after)
        return after

    def _build_with(self, stmt: ast.With | ast.AsyncWith, current: int) -> int:
        self._block(current).events.append(("with_enter", stmt))
        self.withs.append(stmt)
        body_end = self.build_body(stmt.body, current)
        self.withs.pop()
        self._block(body_end).events.append(("with_exit", stmt))
        return body_end

    def _build_try(self, stmt: ast.Try, current: int) -> int:
        body_entry = self._new_linked(current)
        body_end = self.build_body(stmt.body, body_entry)
        join = self.cfg._new_block().block_id
        else_end = (
            self.build_body(stmt.orelse, self._new_linked(body_end))
            if stmt.orelse
            else body_end
        )
        self._block(else_end).link(join)
        for handler in stmt.handlers:
            handler_entry = self.cfg._new_block().block_id
            # An exception may fire before or after any statement of the
            # guarded body: the handler joins both boundary states.
            self._block(body_entry).link(handler_entry)
            self._block(body_end).link(handler_entry)
            handler_end = self.build_body(handler.body, handler_entry)
            self._block(handler_end).link(join)
        if stmt.finalbody:
            final_entry = self._new_linked(join)
            return self.build_body(stmt.finalbody, final_entry)
        return join

    def _build_match(self, stmt: ast.Match, current: int) -> int:
        self._block(current).events.append(("stmt", stmt))
        join = self.cfg._new_block().block_id
        self._block(current).link(join)  # no case may match
        for case in stmt.cases:
            case_entry = self._new_linked(current)
            case_end = self.build_body(case.body, case_entry)
            self._block(case_end).link(join)
        return join

    # -- plumbing -----------------------------------------------------------------

    def _block(self, block_id: int) -> BasicBlock:
        return self.cfg.blocks[block_id]

    def _new_linked(self, from_id: int) -> int:
        block = self.cfg._new_block()
        self.cfg.blocks[from_id].link(block.block_id)
        return block.block_id

    def _dead_block(self) -> int:
        """A fresh unreachable block: code after a terminator lands here."""
        return self.cfg._new_block().block_id

    def _unwind_withs(self, block_id: int, down_to: int) -> None:
        """Emit with_exit events for regions an early exit unwinds."""
        for region in reversed(self.withs[down_to:]):
            self._block(block_id).events.append(("with_exit", region))


S = TypeVar("S")


def dataflow_forward(
    cfg: CFG,
    init: S,
    bottom: S,
    transfer: Callable[[S, Event], S],
    join: Callable[[S, S], S],
) -> Dict[int, List[Tuple[Event, S]]]:
    """Run a forward analysis to fixpoint; returns per-event input states.

    ``init`` seeds the entry block; unreached blocks start at ``bottom``.
    The result maps block id → ``[(event, state-before-event), ...]`` in
    event order, computed from the post-fixpoint block-input states.
    """
    in_states: Dict[int, S] = {bid: bottom for bid in cfg.blocks}
    in_states[cfg.entry] = init
    worklist: List[int] = sorted(cfg.blocks)
    passes = 0
    while worklist:
        passes += 1
        if passes > _MAX_PASSES * max(1, len(cfg.blocks)):
            break  # non-convergence safety valve; result stays sound-ish
        block_id = worklist.pop(0)
        block = cfg.blocks[block_id]
        state = in_states[block_id]
        for event in block.events:
            state = transfer(state, event)
        for succ in block.successors:
            merged = join(in_states[succ], state)
            if merged != in_states[succ]:
                in_states[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)
    result: Dict[int, List[Tuple[Event, S]]] = {}
    for block_id in sorted(cfg.blocks):
        block = cfg.blocks[block_id]
        state = in_states[block_id]
        rows: List[Tuple[Event, S]] = []
        for event in block.events:
            rows.append((event, state))
            state = transfer(state, event)
        result[block_id] = rows
    return result
