"""Clean fixture: every process-pool payload is module-level and picklable."""


class Mapper:
    pass


class Partitioner:
    def partition(self, key, num_partitions):
        return hash(key) % num_partitions


class IdentityMapper(Mapper):
    def map(self, key, value):
        yield key, value


class Job:
    def __init__(self, name, mapper, reducer=None):
        self.name = name


class JobConf:
    def __init__(self, partitioner=None, params=None):
        self.partitioner = partitioner
        self.params = params


def task():
    return 1


def run(executor):
    conf = JobConf(partitioner=Partitioner(), params={"factor": 2})
    job = Job("safe", IdentityMapper)
    future = executor.submit(task)
    return conf, job, future
