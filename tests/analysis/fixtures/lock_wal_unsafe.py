"""Violating fixture for wal-discipline: WAL I/O outside the store lock.

Mirrors the durable store's shape — a generation counter plus a
``DatasetLog``-like durability sink — with append/checkpoint/truncate
call sites that slip out from under the lock, letting the WAL's sequence
order race the generation counter.
"""

import threading


class RacyDurableStore:
    """Logs its mutations, but not always under the lock."""

    def __init__(self):
        self._lock = threading.RLock()
        self._generation = 0
        self._durability = None

    def attach(self, log):
        with self._lock:
            self._durability = log

    def insert(self, row):
        self._durability.log_insert(row)  # VIOLATION: wal-discipline
        with self._lock:
            self._generation += 1

    def remove(self, point_id):
        with self._lock:
            self._durability.log_remove(point_id)
            self._generation += 1

    def flush_now(self):
        self._durability.checkpoint({})  # VIOLATION: wal-discipline


class RacyShardLog:
    """Truncates its WAL while mutators may still be appending."""

    def __init__(self):
        self._lock = threading.Lock()
        self._wal = None
        self._applied = 0

    def apply(self, record):
        with self._lock:
            self._wal.append_record(record)
            self._applied += 1

    def compact(self):
        self._wal.truncate()  # VIOLATION: wal-discipline
