"""Shared fixtures-without-pytest for the serving suites and CI smoke.

Every serving test that spawns a server subprocess, boots a loopback TCP
server, or drives the canonical scripted session used to do it inline;
this module is the one copy:

* :data:`SRC_DIR` / :func:`subprocess_env` — make ``repro`` importable in
  spawned interpreters regardless of how the suite itself was launched;
* :func:`spawn_server` — ``repro serve`` (or ``repro serve --cluster N``)
  as a subprocess driven over stdio pipes;
* :func:`tcp_server` — a context-managed loopback
  :func:`~repro.serving.server.make_tcp_server` (optionally with a custom
  request handler, e.g. the cluster coordinator's);
* :func:`wait_for_port` — poll until an address accepts connections;
* :func:`scripted_session` — the canonical register / query / warm-hit /
  insert / invalidated-re-query storyline;
* :func:`run_ci_smoke` — the CI serving-smoke job body (telemetry-plane
  assertions + the event-log artifact), callable as
  ``python -c "from tests.serving.harness import run_ci_smoke; run_ci_smoke()"``.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Tuple

import repro
from repro.serving.client import ServingClient

__all__ = [
    "SRC_DIR",
    "run_ci_smoke",
    "run_durability_smoke",
    "scripted_session",
    "spawn_server",
    "subprocess_env",
    "tcp_server",
    "wait_for_port",
]

#: Directory that makes ``import repro`` work in a child interpreter.
SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def subprocess_env(**extra: str) -> Dict[str, str]:
    """A copy of the environment with :data:`SRC_DIR` on ``PYTHONPATH``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def spawn_server(*serve_args: str, **popen_kwargs: Any) -> ServingClient:
    """``repro serve [args...]`` as a stdio-piped subprocess client."""
    popen_kwargs.setdefault("env", subprocess_env())
    return ServingClient.spawn(*serve_args, **popen_kwargs)


@contextmanager
def tcp_server(service: Any, *, handler: Any = None) -> Iterator[Tuple[str, int]]:
    """A serving TCP server on a free loopback port, torn down on exit."""
    from repro.serving.server import make_tcp_server

    if handler is None:
        server = make_tcp_server(service)
    else:
        server = make_tcp_server(service, handler=handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        yield str(host), int(port)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def wait_for_port(host: str, port: int, *, timeout_s: float = 10.0) -> None:
    """Block until ``host:port`` accepts a TCP connection."""
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            socket.create_connection((host, port), timeout=1.0).close()
            return
        except OSError:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{host}:{port} not accepting after {timeout_s}s"
                ) from None
            time.sleep(0.05)


def scripted_session(
    client: ServingClient,
    *,
    dataset: str = "qws",
    n: int = 500,
    d: int = 4,
    seed: int = 0,
) -> Dict[str, Dict[str, Any]]:
    """The canonical serving storyline against an open client.

    register → cold query → warm cache hit → insert (generation bump) →
    invalidated re-query containing the new point.  Returns the decoded
    responses keyed ``first`` / ``warm`` / ``inserted`` / ``after`` so
    callers can pile on their own assertions.
    """
    assert client.ping()["pong"] is True

    loaded = client.register(dataset, generate={"n": n, "d": d, "seed": seed})
    assert loaded["ok"] and loaded["size"] == n, loaded
    assert loaded["generation"] == 1, loaded

    first = client.query(dataset)
    assert first["ok"] and not first["cache_hit"], first
    assert first["generation"] == 1, first

    warm = client.query(dataset)
    assert warm["cache_hit"], warm
    assert warm["ids"] == first["ids"], warm

    inserted = client.insert(dataset, [0.001] * d)
    assert inserted["generation"] == 2, "mutation must bump generation"

    after = client.query(dataset)
    assert after["generation"] == 2, after
    assert not after["cache_hit"], "mutation must invalidate the cache"
    assert inserted["id"] in after["ids"], after

    return {"first": first, "warm": warm, "inserted": inserted, "after": after}


def run_ci_smoke(events_path: str = "serve-events.jsonl") -> None:
    """The CI serving-smoke job: scripted session + telemetry plane."""
    import json

    with spawn_server("--max-inflight", "4", "--events", events_path) as client:
        responses = scripted_session(client)

        stats = client.stats()
        assert stats["counters"]["serve.cache.hits"] >= 1, stats
        assert stats["counters"]["serve.cache.misses"] >= 2, stats
        # Non-zero serve.* series: the telemetry plane saw traffic.
        assert stats["counters"]["serve.requests"] >= 3, stats
        assert stats["counters"]["serve.computes"] >= 2, stats
        assert stats["latency"]["count"] >= 3, stats
        assert stats["datasets"]["qws"]["generation"] == 2, stats

        health = client.health()
        assert health["status"] == "healthy", health

        slo = client.slo()
        assert slo["state"] == "ok", slo
        names = [o["name"] for o in slo["objectives"]]
        assert names == ["availability", "latency"], slo
        five_m = slo["objectives"][0]["windows"]["5m"]
        assert five_m["total"] >= 3, slo

        events = client.events(50, kinds=["store.*"])
        assert events["count"] >= 2, events  # register + insert

        exposition = client.metrics(format="prometheus")["body"]
        assert "repro_serve_requests_total" in exposition

        assert client.shutdown()["bye"] is True
        assert responses["after"]["ids"], responses["after"]
    assert client.returncode == 0, client.returncode

    lines = Path(events_path).read_text().splitlines()
    kinds = {json.loads(line)["kind"] for line in lines}
    assert "store.generation" in kinds, kinds
    print("serving smoke OK: telemetry plane + event artifact verified")


def run_durability_smoke(
    data_dir: str = "durability-data",
    report_path: str = "durability-loadtest.json",
) -> None:
    """The CI durability-smoke job: SIGKILL mid-mutation + parity gate.

    Two legs, both persisting under ``data_dir`` so CI can upload the
    WAL/snapshot files as artifacts:

    1. **mid-mutation kill** — a background thread streams acknowledged
       inserts (``--fsync always``) and the server is SIGKILLed while
       that stream is in flight.  A restarted server must hold every
       acknowledged mutation: dataset size and generation must match
       the ack ledger exactly (± the single possibly-in-flight op), and
       all four query kinds must answer at the recovered generation.
    2. **loadtest scenario** — :func:`repro.bench.loadtest.run_scenario`
       (load → open-loop traffic → SIGKILL → recover) with its id-for-id
       parity verdict gated, and the stats written to ``report_path``.
    """
    from repro.bench.loadtest import (
        LoadTestConfig,
        _await_first_answer,
        dump_json,
        run_scenario,
        spawn_tcp_server,
    )
    from repro.serving.client import ServingConnectionError

    dataset, n_bulk, dims = "smoke", 200, 3
    kill_dir = os.path.join(data_dir, "kill")
    durability_args = ("--data-dir", kill_dir, "--fsync", "always")

    # Leg 1: SIGKILL while a mutation stream is mid-flight.
    proc, host, port = spawn_tcp_server(*durability_args)
    acked: list = []
    stop = threading.Event()

    def mutate() -> None:
        try:
            with ServingClient.connect(host, port, timeout=10.0) as client:
                i = 0
                while not stop.is_set():
                    response = client.insert(
                        dataset, [0.001 + i * 1e-6] * dims
                    )
                    if not response.get("ok"):
                        return
                    acked.append((response["id"], response["generation"]))
                    i += 1
        except (OSError, ServingConnectionError):
            return  # the kill severed the connection mid-op — expected

    thread = threading.Thread(target=mutate, daemon=True)
    try:
        with ServingClient.connect(host, port, timeout=10.0) as client:
            loaded = client.register(
                dataset, generate={"n": n_bulk, "d": dims, "seed": 0}
            )
            assert loaded.get("ok"), loaded
        thread.start()
        deadline = time.monotonic() + 10.0
        while len(acked) < 20 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert thread.is_alive(), "mutation stream died before the kill"
        assert len(acked) >= 20, f"only {len(acked)} acknowledged mutations"
    finally:
        proc.kill()  # SIGKILL: no handshake, no flush beyond fsync=always
        proc.wait(timeout=30)
    stop.set()
    thread.join(timeout=10)

    proc2, host2, port2 = spawn_tcp_server(*durability_args)
    try:
        recovery_time_s, _ = _await_first_answer(host2, port2, dataset)
        with ServingClient.connect(host2, port2, timeout=10.0) as client:
            info = client.stats()["datasets"][dataset]
            # Every ack is durable; at most ONE op (sent, never acked)
            # may additionally have reached the log before the kill.
            assert info["size"] - n_bulk in (len(acked), len(acked) + 1), (
                f"{len(acked)} acks but {info['size'] - n_bulk} survivors"
            )
            assert info["generation"] == 1 + (info["size"] - n_bulk), info
            assert info["generation"] >= acked[-1][1], (info, acked[-1])
            for spec in (
                {"kind": "skyline"},
                {"kind": "skyband", "k": 2},
                {
                    "kind": "constrained",
                    "lower": [0.0] * dims,
                    "upper": [0.8] * dims,
                },
                {"kind": "subspace", "dims": [0, 1]},
            ):
                answer = client.query(dataset, **spec)
                assert answer.get("ok"), answer
                assert answer["generation"] == info["generation"], answer
            assert client.shutdown()["bye"] is True
        assert proc2.wait(timeout=30) == 0
    finally:
        if proc2.poll() is None:  # pragma: no cover - cleanup
            proc2.kill()
            proc2.wait(timeout=30)
    print(
        f"mid-mutation kill OK: {len(acked)} acknowledged mutations "
        f"survived SIGKILL; first answer {recovery_time_s:.3f}s after restart"
    )

    # Leg 2: the full loadtest scenario, parity verdict gated.
    stats = run_scenario(
        LoadTestConfig(
            qps=150,
            duration_s=1.0,
            workers=4,
            n_points=300,
            mutation_fraction=0.15,
            seed=0,
        ),
        os.path.join(data_dir, "scenario"),
        fsync="always",
        snapshot_every=64,
    )
    dump_json(stats, report_path)
    assert stats["recovery"]["parity"] is True, stats["recovery"]
    assert stats["requests"]["errors"] == 0, stats["requests"]
    assert stats["durability"]["records_replayed"] > 0, stats["durability"]
    print(
        "durability smoke OK: id-for-id parity after SIGKILL "
        f"(report at {report_path})"
    )
