"""Fixture: multi-lock code with a consistent order — no cycle to report.

Both cross-class paths take ``Accounts._lock`` before ``Audit._lock``, and
the reentrant re-acquisition uses an RLock (the serving store's documented
``_ensure_sky`` idiom).
"""

import threading


class Accounts:
    def __init__(self, audit: "Audit"):
        self._lock = threading.Lock()
        self.audit = audit
        self.balance = 0

    def transfer(self, amount: int) -> None:
        with self._lock:
            self.balance -= amount
            self.audit.record(self)

    def reconcile(self) -> None:
        # Same order as transfer(): Accounts._lock, then Audit._lock.
        with self._lock:
            self.audit.record(self)


class Audit:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.entries = []

    def record(self, accounts: "Accounts") -> None:
        with self._lock:
            self.entries.append(1)


class Reentrant:
    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.total = 0

    def outer(self) -> None:
        with self._lock:
            self.inner()

    def inner(self) -> None:
        # RLock re-acquisition on the outer() path is reentrant — fine.
        with self._lock:
            self.total += 1
