"""Tests for QoS-aware service composition."""

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.dominance import dominates
from repro.core.skyline import skyline_numpy
from repro.services.composition import (
    AGGREGATIONS,
    CompositionTask,
    aggregate_qos,
    skyline_compositions,
)

candidate_sets = arrays(
    np.float64,
    st.tuples(st.integers(1, 8), st.integers(2, 3)),
    elements=st.floats(0, 50, allow_nan=False),
)


class TestAggregateQos:
    def test_sum(self):
        rows = np.array([[10.0, 1.0], [20.0, 2.0]])
        out = aggregate_qos(rows, ["sum", "sum"])
        assert out.tolist() == [30.0, 3.0]

    def test_max(self):
        rows = np.array([[10.0], [25.0], [5.0]])
        assert aggregate_qos(rows, ["max"])[0] == 25.0

    def test_prob_multiplies_success(self):
        # Flipped availability 10 and 20 on bound 100 -> 0.9 * 0.8 = 0.72
        rows = np.array([[10.0], [20.0]])
        out = aggregate_qos(rows, ["prob"], prob_bounds=[100.0])
        assert out[0] == pytest.approx(100.0 * (1 - 0.72))

    def test_prob_default_bound_100(self):
        rows = np.array([[0.0], [0.0]])
        assert aggregate_qos(rows, ["prob"])[0] == pytest.approx(0.0)

    def test_prob_bad_bound(self):
        with pytest.raises(ValueError):
            aggregate_qos(np.ones((1, 1)), ["prob"], prob_bounds=[0.0])

    def test_wrong_rule_count(self):
        with pytest.raises(ValueError):
            aggregate_qos(np.ones((1, 2)), ["sum"])

    def test_unknown_rule(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            aggregate_qos(np.ones((1, 1)), ["median"])

    def test_single_component_identity_for_sum_max(self):
        row = np.array([[3.0, 7.0]])
        assert aggregate_qos(row, ["sum", "max"]).tolist() == [3.0, 7.0]

    @given(
        a=arrays(np.float64, (3, 2), elements=st.floats(0, 99, allow_nan=False)),
        b=arrays(np.float64, (3, 2), elements=st.floats(0, 99, allow_nan=False)),
        rule=st.sampled_from(AGGREGATIONS),
    )
    @settings(max_examples=80)
    def test_property_monotone(self, a, b, rule):
        """Componentwise-smaller inputs give componentwise-smaller aggregates
        — the premise of the per-task pruning theorem."""
        lo = np.minimum(a, b)
        out_lo = aggregate_qos(lo, [rule, rule])
        out_a = aggregate_qos(a, [rule, rule])
        assert (out_lo <= out_a + 1e-9).all()


class TestTaskContainer:
    def test_default_ids(self):
        t = CompositionTask("t", np.ones((3, 2)))
        assert t.ids.tolist() == [0, 1, 2]

    def test_custom_ids_checked(self):
        with pytest.raises(ValueError):
            CompositionTask("t", np.ones((3, 2)), ids=np.array([1, 2]))


class TestSkylineCompositions:
    def _tiny(self, seed=0, tasks=2, m=5, d=2):
        rng = np.random.default_rng(seed)
        return [
            CompositionTask(f"t{i}", rng.uniform(0, 10, (m, d)))
            for i in range(tasks)
        ]

    def test_matches_bruteforce_sum(self):
        tasks = self._tiny(seed=1)
        res = skyline_compositions(tasks, ["sum", "sum"])
        all_qos = np.array(
            [
                tasks[0].candidates[a] + tasks[1].candidates[b]
                for a, b in product(range(5), range(5))
            ]
        )
        expected = {tuple(np.round(q, 9)) for q in all_qos[skyline_numpy(all_qos)]}
        got = {tuple(np.round(q, 9)) for q in res.qos}
        assert got == expected

    @pytest.mark.parametrize("rule", AGGREGATIONS)
    def test_matches_bruteforce_each_rule(self, rule):
        tasks = self._tiny(seed=2, m=4)
        res = skyline_compositions(tasks, [rule, rule])
        combos = list(product(range(4), range(4)))
        all_qos = np.array(
            [
                aggregate_qos(
                    np.vstack([tasks[0].candidates[a], tasks[1].candidates[b]]),
                    [rule, rule],
                )
                for a, b in combos
            ]
        )
        expected = {tuple(np.round(q, 9)) for q in all_qos[skyline_numpy(all_qos)]}
        got = {tuple(np.round(q, 9)) for q in res.qos}
        assert got == expected

    def test_result_is_pareto(self):
        tasks = self._tiny(seed=3, tasks=3, m=8, d=3)
        res = skyline_compositions(tasks, ["sum", "max", "prob"])
        for i in range(len(res)):
            for j in range(len(res)):
                if i != j:
                    assert not dominates(res.qos[i], res.qos[j])

    def test_plan_ids_valid(self):
        tasks = self._tiny(seed=4, tasks=3)
        res = skyline_compositions(tasks, ["sum", "sum"])
        assert res.plans.shape[1] == 3
        for col, task in zip(res.plans.T, tasks):
            assert set(col.tolist()) <= set(task.ids.tolist())

    def test_plan_qos_recomputable(self):
        tasks = self._tiny(seed=5)
        res = skyline_compositions(tasks, ["sum", "sum"])
        for plan, qos in zip(res.plans, res.qos):
            rows = np.vstack(
                [t.candidates[pid] for t, pid in zip(tasks, plan)]
            )
            assert np.allclose(aggregate_qos(rows, ["sum", "sum"]), qos)

    def test_pruning_reduces_enumeration(self):
        rng = np.random.default_rng(6)
        tasks = [
            CompositionTask(f"t{i}", rng.uniform(0, 10, (50, 2)))
            for i in range(3)
        ]
        res = skyline_compositions(tasks, ["sum", "sum"])
        assert res.enumerated < res.search_space

    def test_enumeration_cap(self):
        x = np.linspace(0, 1, 40)
        front = np.column_stack([x, 1 - x])  # everything is skyline
        tasks = [CompositionTask(f"t{i}", front) for i in range(4)]
        with pytest.raises(ValueError, match="shrink"):
            skyline_compositions(tasks, ["sum", "sum"], max_enumerations=1000)

    def test_no_tasks_rejected(self):
        with pytest.raises(ValueError):
            skyline_compositions([], ["sum"])

    def test_attribute_mismatch_rejected(self):
        tasks = [
            CompositionTask("a", np.ones((2, 2))),
            CompositionTask("b", np.ones((2, 3))),
        ]
        with pytest.raises(ValueError, match="attributes"):
            skyline_compositions(tasks, ["sum", "sum"])

    def test_single_task_is_its_skyline(self):
        rng = np.random.default_rng(7)
        task = CompositionTask("only", rng.uniform(0, 10, (30, 2)))
        res = skyline_compositions([task], ["sum", "sum"])
        expected = skyline_numpy(task.candidates)
        assert sorted(res.plans[:, 0].tolist()) == expected.tolist()

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_matches_bruteforce(self, data):
        a = data.draw(candidate_sets)
        b = data.draw(
            arrays(
                np.float64,
                st.tuples(st.integers(1, 8), st.just(a.shape[1])),
                elements=st.floats(0, 50, allow_nan=False),
            )
        )
        tasks = [CompositionTask("a", a), CompositionTask("b", b)]
        rules = ["sum"] * a.shape[1]
        res = skyline_compositions(tasks, rules)
        all_qos = np.array(
            [
                a[i] + b[j]
                for i in range(a.shape[0])
                for j in range(b.shape[0])
            ]
        )
        expected = {tuple(np.round(q, 6)) for q in all_qos[skyline_numpy(all_qos)]}
        got = {tuple(np.round(q, 6)) for q in res.qos}
        assert got == expected
