"""Fixture: blocking operations reachable while a lock is held.

Direct forms (sleep, socket recv, zero-arg queue get) and the transitive
form (a callee three frames down does the sleeping).
"""

import threading
import time


class SlowCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.items = {}

    def refresh(self, conn) -> None:
        with self._lock:
            time.sleep(0.1)  # VIOLATION: blocking-under-lock
            self.items["x"] = conn.recv(1024)  # VIOLATION: blocking-under-lock

    def load(self, queue) -> None:
        with self._lock:
            self.items["y"] = queue.get()  # VIOLATION: blocking-under-lock

    def warm(self) -> None:
        with self._lock:
            self._refill()  # VIOLATION: blocking-under-lock

    def _refill(self) -> None:
        # Not a finding by itself: no lock is held *here*; warm() is the
        # one holding SlowCache._lock across the sleep.
        time.sleep(0.5)
        self.items.clear()
