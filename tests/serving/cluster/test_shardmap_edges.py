"""ShardMap identity at the degenerate placements.

The global ↔ (shard, local) maps must stay exact bijections at the
edges: a one-shard cluster (every partitioner-keyed placement collapses
to single-shard), and a cluster with more shards than points (some
shards participate but start empty).
"""

import numpy as np
import pytest

from repro.serving.cluster.shards import ShardMap


def _rows(n, d=3, seed=21):
    return np.random.default_rng(seed).random((n, d)) + 0.01


def _assert_bijection(placement, n_rows):
    assert placement.next_global_id == n_rows
    assert sorted(placement.local_of) == list(range(n_rows))
    assert len(placement.global_of) == n_rows
    for gid, address in placement.local_of.items():
        assert placement.global_of[address] == gid
        (shard, local) = address
        assert placement.to_global(shard, [local]) == [gid]


class TestSingleShardCluster:
    def test_round_trip_all_ids(self):
        smap = ShardMap(1)
        rows = _rows(12)
        placement, slices = smap.place("solo", rows, shard_fn="angle")
        # One shard: the partitioner-keyed request still lands everywhere
        # it can — shard 0 — with ids 0..n-1 in row order.
        assert slices[0] is not None and slices[0].shape[0] == 12
        _assert_bijection(placement, 12)
        assert all(addr[0] == 0 for addr in placement.local_of.values())

    def test_bind_release_rebind_never_reuses_ids(self):
        smap = ShardMap(1)
        placement, _ = smap.place("solo", _rows(3), shard_fn="hash")
        assert placement.release(1) == (0, 1)
        fresh = placement.bind(0, 99)
        assert fresh == 3, "released ids must never be reassigned"
        assert placement.local_of[fresh] == (0, 99)
        assert 1 not in placement.local_of

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardMap(0)


class TestMoreShardsThanPoints:
    def test_sparse_placement_round_trips(self):
        smap = ShardMap(6)
        rows = _rows(2)
        placement, slices = smap.place("sparse", rows, shard_fn="angle")
        assert placement.shard_ids == tuple(range(6))
        held = sum(s.shape[0] for s in slices if s is not None)
        assert held == 2
        _assert_bijection(placement, 2)
        # Participating-but-empty shards get an empty slice, not None.
        empties = [s for s in slices if s is not None and s.shape[0] == 0]
        assert len(empties) >= 4

    def test_generation_vector_spans_every_shard(self):
        smap = ShardMap(5)
        placement, _ = smap.place("sparse", _rows(1), shard_fn="hash")
        assert len(placement.generation_vector()) == 5
        placement.observe_generation(3, 7)
        placement.observe_generation(3, 2)  # stale observation
        assert placement.generation_vector()[3] == 7, "gvec must max-merge"

    def test_inserts_extend_the_bijection_across_empty_shards(self):
        smap = ShardMap(4)
        rows = _rows(2)
        placement, _ = smap.place("sparse", rows, shard_fn="angle")
        # Route fresh rows to whichever shard owns them; local ids are
        # per-shard counters, global ids a single arrival-ordered clock.
        locals_next = {s: 0 for s in placement.shard_ids}
        for gid, (shard, local) in placement.local_of.items():
            locals_next[shard] = max(locals_next[shard], local + 1)
        for i in range(8):
            row = _rows(1, seed=100 + i)[0]
            shard = placement.owner_of(row)
            gid = placement.bind(shard, locals_next[shard])
            locals_next[shard] += 1
            assert gid == 2 + i
        _assert_bijection(placement, 10)
