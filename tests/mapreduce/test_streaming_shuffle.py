"""StreamingShuffle parity with the batch shuffle.

The streaming form's contract is *exact* output equivalence with
:func:`repro.mapreduce.shuffle.shuffle` — same key order, same value order
within a key, same stats volume — for any ingestion order, with or without
the spill path.  Hypothesis drives the map outputs and the arrival
permutation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.shuffle import StreamingShuffle, shuffle


def _split_into_map_outputs(pairs, num_maps, num_partitions):
    """Round-robin pairs over map tasks, partition by key mod."""
    outputs = []
    for m in range(num_maps):
        buffers = [[] for _ in range(num_partitions)]
        for k, v in pairs[m::num_maps]:
            buffers[k % num_partitions].append((k, v))
        outputs.append(buffers)
    return outputs


def _stream(map_outputs, num_partitions, order, **kwargs):
    ss = StreamingShuffle(len(map_outputs), num_partitions, **kwargs)
    with ss:
        for map_index in order:
            ss.ingest(map_index, map_outputs[map_index])
        return ss.finalize_all(), ss.stats


# One strategy shared by all the parity properties: pairs with lots of key
# collisions (so value-order stability is actually exercised), a map-task
# count, a partition count, and a seed for the arrival permutation.
_pairs = st.lists(st.tuples(st.integers(0, 15), st.integers(0, 999)), max_size=80)
_shape = st.tuples(_pairs, st.integers(1, 5), st.integers(1, 4), st.randoms())


class TestStreamingParity:
    @given(shape=_shape)
    @settings(max_examples=80, deadline=None)
    def test_matches_batch_for_any_arrival_order(self, shape):
        pairs, num_maps, num_parts, rng = shape
        outputs = _split_into_map_outputs(pairs, num_maps, num_parts)
        batch, batch_stats = shuffle(outputs, num_parts)
        order = list(range(num_maps))
        rng.shuffle(order)
        streamed, stream_stats = _stream(outputs, num_parts, order)
        assert streamed == batch
        assert stream_stats.records == batch_stats.records
        assert stream_stats.bytes == batch_stats.bytes
        assert stream_stats.segments == batch_stats.segments

    @given(shape=_shape)
    @settings(max_examples=40, deadline=None)
    def test_matches_batch_with_spill(self, shape, tmp_path_factory):
        pairs, num_maps, num_parts, rng = shape
        outputs = _split_into_map_outputs(pairs, num_maps, num_parts)
        batch, _ = shuffle(outputs, num_parts)
        order = list(range(num_maps))
        rng.shuffle(order)
        spill_dir = tmp_path_factory.mktemp("spill")
        streamed, stats = _stream(
            outputs,
            num_parts,
            order,
            spill_dir=str(spill_dir),
            spill_threshold_records=5,
        )
        assert streamed == batch
        # Spill files are consumed and removed by finalize/close.
        assert list(spill_dir.iterdir()) == []

    @given(shape=_shape)
    @settings(max_examples=40, deadline=None)
    def test_matches_batch_unsorted(self, shape):
        pairs, num_maps, num_parts, rng = shape
        outputs = _split_into_map_outputs(pairs, num_maps, num_parts)
        batch, _ = shuffle(outputs, num_parts, sort_keys=False)
        order = list(range(num_maps))
        rng.shuffle(order)
        streamed, _ = _stream(outputs, num_parts, order, sort_keys=False)
        assert streamed == batch


class TestStreamingContract:
    def test_spill_actually_spills(self, tmp_path):
        outputs = _split_into_map_outputs([(0, i) for i in range(50)], 2, 1)
        ss = StreamingShuffle(
            2, 1, spill_dir=str(tmp_path), spill_threshold_records=10
        )
        ss.ingest(0, outputs[0])
        ss.ingest(1, outputs[1])
        assert ss.stats.spilled_segments >= 1
        merged = ss.finalize(0)
        assert sum(len(vs) for _, vs in merged) == 50

    def test_finalize_before_complete_raises(self):
        ss = StreamingShuffle(2, 1)
        ss.ingest(0, [[(0, 1)]])
        with pytest.raises(RuntimeError, match="1 map tasks pending"):
            ss.finalize(0)

    def test_double_ingest_raises(self):
        ss = StreamingShuffle(2, 1)
        ss.ingest(0, [[(0, 1)]])
        with pytest.raises(ValueError, match="already ingested"):
            ss.ingest(0, [[(0, 2)]])

    def test_buffer_count_mismatch_raises(self):
        ss = StreamingShuffle(1, 2)
        with pytest.raises(ValueError, match="1 buffers for 2 partitions"):
            ss.ingest(0, [[(0, 1)]])

    def test_zero_map_tasks_is_immediately_complete(self):
        ss = StreamingShuffle(0, 3)
        assert ss.complete
        assert ss.finalize_all() == [[], [], []]

    def test_close_removes_spill_files(self, tmp_path):
        outputs = _split_into_map_outputs([(0, i) for i in range(40)], 1, 1)
        ss = StreamingShuffle(
            1, 1, spill_dir=str(tmp_path), spill_threshold_records=5
        )
        ss.ingest(0, outputs[0])
        assert list(tmp_path.iterdir()) != []
        ss.close()
        assert list(tmp_path.iterdir()) == []

    def test_same_type_incomparable_keys_match_batch(self):
        # The _sort_token repr fallback must agree between the batch sort
        # and the streaming heap-merge.
        outputs = [
            [[((1, "a"), "x"), (("a", 1), "y")]],
            [[((1, "a"), "z"), ((0, "b"), "w")]],
        ]
        batch, _ = shuffle(outputs, 1)
        streamed, _ = _stream(outputs, 1, [1, 0])
        assert streamed == batch
