"""Snapshot atomicity and the strict-on-corruption contract.

A torn WAL tail is routine; a corrupt snapshot is not — the WAL was
truncated on the snapshot's promise, so ``read_snapshot`` must raise
rather than quietly recover less data than was acknowledged.
"""

import os
import zlib

import pytest

from repro.serving.durability import (
    SNAPSHOT_FORMAT,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)
from repro.serving.durability.wal import HEADER


def snap_path(tmp_path):
    return str(tmp_path / "snapshot.bin")


class TestRoundtrip:
    def test_payload_survives_with_format_stamp(self, tmp_path):
        path = snap_path(tmp_path)
        size = write_snapshot(path, {"generation": 7, "ids": [0, 1]})
        assert size == os.path.getsize(path)
        payload = read_snapshot(path)
        assert payload["generation"] == 7
        assert payload["ids"] == [0, 1]
        assert payload["format"] == SNAPSHOT_FORMAT

    def test_missing_file_reads_none(self, tmp_path):
        assert read_snapshot(snap_path(tmp_path)) is None

    def test_rewrite_replaces_atomically(self, tmp_path):
        path = snap_path(tmp_path)
        write_snapshot(path, {"generation": 1})
        write_snapshot(path, {"generation": 2})
        assert read_snapshot(path)["generation"] == 2
        assert not os.path.exists(path + ".tmp"), "tmp file must not survive"


class TestCorruptionIsFatal:
    def test_short_header(self, tmp_path):
        path = snap_path(tmp_path)
        open(path, "wb").write(b"\x00\x01")
        with pytest.raises(SnapshotError, match="shorter than its header"):
            read_snapshot(path)

    def test_truncated_body(self, tmp_path):
        path = snap_path(tmp_path)
        write_snapshot(path, {"generation": 3, "rows": [[0.1] * 8] * 16})
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError, match="declares"):
            read_snapshot(path)

    def test_crc_mismatch(self, tmp_path):
        path = snap_path(tmp_path)
        write_snapshot(path, {"generation": 3})
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(SnapshotError, match="CRC"):
            read_snapshot(path)

    def test_format_mismatch(self, tmp_path):
        path = snap_path(tmp_path)
        body = b'{"format":999,"generation":1}'
        open(path, "wb").write(HEADER.pack(len(body), zlib.crc32(body)) + body)
        with pytest.raises(SnapshotError, match="format"):
            read_snapshot(path)

    def test_non_object_payload(self, tmp_path):
        path = snap_path(tmp_path)
        body = b"[1,2,3]"
        open(path, "wb").write(HEADER.pack(len(body), zlib.crc32(body)) + body)
        with pytest.raises(SnapshotError, match="not an object"):
            read_snapshot(path)
