"""Random partitioning — a load-balance-only baseline (not in the paper).

Random assignment balances partition sizes perfectly in expectation but
ignores geometry entirely, so every partition's local skyline is a fresh
skyline of a random sample — typically much larger than a sector's, which
makes the Reduce merge expensive.  Used in the ablation benchmarks to show
that MR-Angle's advantage is geometric, not just balance.

Assignment is *content-hashed* (BLAKE2 over the point's bytes plus the
seed), so it is deterministic, independent of point order, and stable for
points unseen at fit time — properties a plain RNG draw would not have.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

import numpy as np

from repro.core.partitioning.base import SpacePartitioner

__all__ = ["RandomPartitioner"]


class RandomPartitioner(SpacePartitioner):
    """Deterministic content-hash partitioning."""

    scheme = "random"

    def __init__(self, num_partitions: int, *, seed: int = 0) -> None:
        super().__init__(num_partitions)
        self.seed = int(seed)

    def _fit(self, points: np.ndarray) -> None:
        # Stateless by design: nothing to learn from the data.
        return None

    def _assign(self, points: np.ndarray) -> np.ndarray:
        salt = self.seed.to_bytes(8, "little", signed=True)
        ids = np.empty(points.shape[0], dtype=np.int64)
        for i, row in enumerate(np.ascontiguousarray(points)):
            digest = hashlib.blake2b(
                row.tobytes(), key=salt, digest_size=8
            ).digest()
            ids[i] = int.from_bytes(digest, "little") % self.num_partitions
        return ids

    def _detail(self) -> Mapping[str, object]:
        return {"seed": self.seed}
