"""Baseline files: adopt the checker on a tree with pre-existing findings.

A baseline is a JSON list of finding fingerprints (path- and
line-number-free, see :meth:`~repro.analysis.findings.Finding.fingerprint`).
``repro lint --baseline FILE`` filters out findings whose fingerprint is
recorded, so a team can gate *new* violations immediately and burn the old
ones down over time; ``--write-baseline`` records the current findings.

Version 2 dropped the file path from the fingerprint: v1 baselines keyed
on absolute paths, which broke on any rename *and* on every other
checkout of the repository.  Old files are rejected with a pointer to
``--write-baseline`` rather than silently matching nothing.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Set, Tuple

from repro.analysis.findings import Finding

_VERSION = 2


class BaselineError(ValueError):
    """The baseline file is missing, malformed, or wrong-versioned."""


def load_baseline(path: str) -> Set[str]:
    """Read a baseline file's fingerprint set."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"malformed baseline {path}: {exc}") from exc
    if isinstance(payload, dict) and payload.get("version") == 1:
        raise BaselineError(
            f"baseline {path} uses the retired version-1 (path-keyed) "
            "fingerprints; regenerate it with --write-baseline"
        )
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _VERSION
        or not isinstance(payload.get("fingerprints"), list)
    ):
        raise BaselineError(
            f"baseline {path} is not a version-{_VERSION} fingerprint file"
        )
    return {str(fp) for fp in payload["fingerprints"]}


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Record ``findings`` as the new baseline; returns the entry count."""
    fingerprints = sorted({f.fingerprint() for f in findings})
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"version": _VERSION, "fingerprints": fingerprints},
            fh,
            indent=2,
        )
        fh.write("\n")
    return len(fingerprints)


def split_baselined(
    findings: Iterable[Finding], fingerprints: Set[str]
) -> Tuple[List[Finding], int]:
    """(kept findings, baselined-out count)."""
    kept: List[Finding] = []
    dropped = 0
    for finding in findings:
        if finding.fingerprint() in fingerprints:
            dropped += 1
        else:
            kept.append(finding)
    return kept, dropped
