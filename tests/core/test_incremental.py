"""Tests for dynamic (incremental) skyline maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalSkyline
from repro.core.partitioning import AngularPartitioner, GridPartitioner
from repro.core.skyline import skyline_numpy


def _fitted_partitioner(scale=10.0, partitions=4):
    seed = np.array([[0.01, 0.01], [scale, scale]])
    return AngularPartitioner(partitions, bins="equal-width").fit(seed)


class TestConstruction:
    def test_from_initial_points(self):
        pts = np.random.default_rng(0).random((50, 2)) + 0.01
        sky = IncrementalSkyline(AngularPartitioner(4), initial_points=pts)
        assert len(sky) == 50
        expected = skyline_numpy(pts)
        assert sky.global_skyline() == expected.tolist()

    def test_unfitted_without_points_rejected(self):
        with pytest.raises(ValueError):
            IncrementalSkyline(AngularPartitioner(4))

    def test_fitted_without_points_ok(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        assert len(sky) == 0
        assert sky.global_skyline() == []


class TestInsert:
    def test_ids_sequential(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        assert sky.insert([1.0, 2.0]) == 0
        assert sky.insert([2.0, 1.0]) == 1

    def test_dominated_insert_not_in_skyline(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        sky.insert([1.0, 1.0])
        pid = sky.insert([2.0, 2.0])
        assert pid not in sky.global_skyline()
        assert pid in sky  # still stored as a member

    def test_dominating_insert_evicts(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        old = sky.insert([2.0, 2.0])
        new = sky.insert([1.0, 1.0])
        assert sky.global_skyline() == [new]
        assert old in sky

    def test_incremental_matches_batch(self):
        rng = np.random.default_rng(1)
        pts = rng.random((200, 2)) + 0.01
        sky = IncrementalSkyline(_fitted_partitioner(scale=1.2))
        for row in pts:
            sky.insert(row)
        assert sky.global_skyline() == skyline_numpy(pts).tolist()

    def test_global_points_rows(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        sky.insert([1.0, 3.0])
        sky.insert([3.0, 1.0])
        assert sky.global_skyline_points().shape == (2, 2)

    @given(st.lists(st.tuples(st.floats(0.01, 10), st.floats(0.01, 10)), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_batch(self, rows):
        sky = IncrementalSkyline(_fitted_partitioner())
        for row in rows:
            sky.insert(np.array(row))
        if rows:
            expected = skyline_numpy(np.array(rows)).tolist()
        else:
            expected = []
        assert sky.global_skyline() == expected


class TestRemove:
    def test_remove_skyline_point_resurfaces_dominated(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        a = sky.insert([1.0, 1.0])
        b = sky.insert([2.0, 2.0])  # dominated by a
        sky.remove(a)
        assert sky.global_skyline() == [b]

    def test_remove_non_skyline_member(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        a = sky.insert([1.0, 1.0])
        b = sky.insert([2.0, 2.0])
        sky.remove(b)
        assert sky.global_skyline() == [a]
        assert b not in sky

    def test_remove_unknown_raises(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        with pytest.raises(KeyError):
            sky.remove(99)

    def test_remove_then_reinsert_gets_new_id(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        a = sky.insert([1.0, 1.0])
        sky.remove(a)
        b = sky.insert([1.0, 1.0])
        assert b != a

    def test_churn_matches_batch(self):
        rng = np.random.default_rng(2)
        pts = rng.random((120, 2)) + 0.01
        sky = IncrementalSkyline(_fitted_partitioner(scale=1.2))
        ids = [sky.insert(row) for row in pts]
        removed = set(rng.choice(120, size=40, replace=False).tolist())
        for i in removed:
            sky.remove(ids[i])
        survivors = np.array(
            [pts[i] for i in range(120) if i not in removed]
        )
        expected = {
            ids[i]
            for i in np.flatnonzero(~np.isin(np.arange(120), list(removed)))[
                skyline_numpy(survivors)
            ]
        }
        assert set(sky.global_skyline()) == expected


class TestPartitionLocality:
    def test_local_skyline_query(self):
        pts = np.random.default_rng(3).random((100, 2)) + 0.01
        partitioner = _fitted_partitioner(scale=1.2)
        sky = IncrementalSkyline(partitioner, initial_points=pts)
        for pid in range(partitioner.num_partitions):
            local = sky.local_skyline(pid)
            for point_id in local:
                row = sky.point(point_id)
                assert partitioner.assign(row.reshape(1, -1))[0] == pid

    def test_insert_touches_only_own_partition(self):
        partitioner = _fitted_partitioner(scale=10.0)
        sky = IncrementalSkyline(partitioner)
        a = sky.insert([5.0, 0.5])  # near x-axis sector
        before = {
            pid: sky.local_skyline(pid) for pid in range(partitioner.num_partitions)
        }
        b = sky.insert([0.5, 5.0])  # near y-axis sector, different partition
        pid_b = partitioner.assign(np.array([[0.5, 5.0]]))[0]
        for pid, local in before.items():
            if pid != pid_b:
                assert sky.local_skyline(pid) == local

    def test_works_with_grid_partitioner(self):
        pts = np.random.default_rng(4).random((150, 3))
        grid = GridPartitioner(8).fit(pts)
        sky = IncrementalSkyline(grid, initial_points=pts)
        assert sky.global_skyline() == skyline_numpy(pts).tolist()
