"""End-to-end tracing and metrics for the MapReduce skyline engine.

Two process-wide singletons back every hook in the engine:

* the **tracer** (:func:`get_tracer`) — structured spans covering
  job → phase (map/shuffle/reduce) → task → retry, exported as JSON
  lines; disabled by default at near-zero cost, and
* the **metrics registry** (:func:`get_metrics`) — counters, gauges and
  histograms, including the partition-skew gauges and the absorbed
  Hadoop-style job counters; always on (it is just dict arithmetic).

Typical use — trace one run and read it back::

    from repro import observability as obs

    tracer = obs.enable_tracing("run.jsonl")
    run_mr_skyline(points, method="angle")
    obs.disable_tracing(write_metrics=True)   # appends metrics snapshot

    spans, snapshot = obs.load_trace("run.jsonl")
    print(obs.render_summary(spans, snapshot))

or, from the command line, ``repro-skyline fig5a --trace run.jsonl``
then ``repro-skyline trace run.jsonl``.  See ``docs/observability.md``.
"""

from __future__ import annotations

from repro.observability.events import (
    Event,
    EventLog,
    get_events,
    set_events,
)
from repro.observability.export import (
    DeltaSnapshotter,
    json_snapshot,
    render_prometheus,
    sanitize_metric_name,
    snapshot_delta,
)
from repro.observability.metrics import (
    DEFAULT_DURATION_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ThresholdWatch,
    get_metrics,
    observe_partition_skew,
    set_metrics,
)
from repro.observability.slo import (
    SLObjective,
    SLOTracker,
    default_objectives,
)
from repro.observability.report import (
    TraceError,
    load_trace,
    render_summary,
    render_tree,
    summarize_spans,
)
from repro.observability.tracing import (
    NULL_TRACER,
    JsonLinesExporter,
    Span,
    Tracer,
    get_tracer,
    now_ns,
    read_trace,
    set_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_DURATION_BUCKETS_S",
    "DeltaSnapshotter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonLinesExporter",
    "MetricsRegistry",
    "NULL_TRACER",
    "SLOTracker",
    "SLObjective",
    "Span",
    "ThresholdWatch",
    "TraceError",
    "Tracer",
    "default_objectives",
    "disable_tracing",
    "enable_tracing",
    "get_events",
    "get_metrics",
    "get_tracer",
    "json_snapshot",
    "load_trace",
    "now_ns",
    "observe_partition_skew",
    "read_trace",
    "render_prometheus",
    "render_summary",
    "render_tree",
    "sanitize_metric_name",
    "set_events",
    "set_metrics",
    "set_tracer",
    "snapshot_delta",
    "summarize_spans",
]


def enable_tracing(path: str | None = None, *, keep_spans: bool = False) -> Tracer:
    """Install an enabled process-wide tracer.

    ``path`` attaches a JSON-lines exporter writing every finished span
    to that file; ``keep_spans`` additionally retains spans in memory
    (``tracer.finished``) for programmatic summaries.
    """
    exporter = JsonLinesExporter(path) if path is not None else None
    return set_tracer(Tracer(exporter, enabled=True, keep_spans=keep_spans))


def disable_tracing(*, write_metrics: bool = False) -> None:
    """Reset the process-wide tracer to the disabled default.

    With ``write_metrics=True``, the current metrics-registry snapshot is
    appended to the outgoing tracer's export stream first, so the trace
    file carries the final counter/gauge/histogram state.
    """
    tracer = get_tracer()
    if tracer.exporter is not None:
        if write_metrics:
            tracer.exporter.write_metrics(get_metrics().snapshot())
        tracer.exporter.close()
    set_tracer(None)
