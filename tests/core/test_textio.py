"""Integration tests: the file-to-file skyline pipeline."""

import numpy as np
import pytest

from repro.core.skyline import skyline_numpy
from repro.core.textio import (
    read_skyline_output,
    run_mr_skyline_files,
    write_points_csv,
)
from repro.mapreduce.errors import FileSystemError
from repro.mapreduce.fs import BlockFileSystem
from repro.mapreduce.outputs import SUCCESS_MARKER


@pytest.fixture
def fs():
    # Small blocks so the input genuinely spans multiple splits.
    return BlockFileSystem(block_size=512)


@pytest.fixture(scope="module")
def points():
    return np.round(np.random.default_rng(0).random((400, 3)), 6)


class TestWritePoints:
    def test_round_trip_via_lines(self, fs, points):
        write_points_csv(fs, "/data/points.csv", points)
        lines = [l for l in fs.iter_lines("/data/points.csv") if l]
        parsed = np.vstack(
            [np.array([float(t) for t in l.split(",")]) for l in lines]
        )
        assert np.allclose(parsed, points)

    def test_empty_matrix(self, fs):
        write_points_csv(fs, "/data/empty.csv", np.empty((0, 3)))
        assert fs.read_text("/data/empty.csv") == ""

    def test_overwrite_flag(self, fs, points):
        write_points_csv(fs, "/data/p.csv", points)
        with pytest.raises(FileSystemError):
            write_points_csv(fs, "/data/p.csv", points)
        write_points_csv(fs, "/data/p.csv", points[:10], overwrite=True)


class TestEndToEnd:
    @pytest.mark.parametrize("method", ["dim", "grid", "angle"])
    def test_matches_reference(self, fs, points, method):
        write_points_csv(fs, "/in/points.csv", points)
        result = run_mr_skyline_files(
            fs, "/in/points.csv", f"/out/{method}", method=method
        )
        expected = skyline_numpy(points)
        assert np.allclose(
            result.skyline_points, points[expected]
        ), "skyline coordinates differ"
        assert result.skyline_offsets.size == expected.size

    def test_output_committed(self, fs, points):
        write_points_csv(fs, "/in/p.csv", points)
        result = run_mr_skyline_files(fs, "/in/p.csv", "/out/sky")
        assert fs.exists(f"/out/sky/{SUCCESS_MARKER}")
        assert all(fs.exists(p) for p in result.part_paths)

    def test_read_back(self, fs, points):
        write_points_csv(fs, "/in/p.csv", points)
        run_mr_skyline_files(fs, "/in/p.csv", "/out/sky")
        offsets, rows = read_skyline_output(fs, "/out/sky")
        expected = skyline_numpy(points)
        assert np.allclose(np.sort(rows, axis=0), np.sort(points[expected], axis=0))
        # Offsets are genuine byte offsets into the input file.
        text = fs.read_text("/in/p.csv")
        for off, row in zip(offsets, rows):
            line = text[off:].split("\n", 1)[0]
            assert np.allclose(
                np.array([float(t) for t in line.split(",")]), row
            )

    def test_multi_block_input(self, points):
        # 1 KiB of text per block ensures several map tasks.
        fs = BlockFileSystem(block_size=256)
        write_points_csv(fs, "/in/p.csv", points)
        result = run_mr_skyline_files(fs, "/in/p.csv", "/out/sky")
        assert len(result.chain.results[0].map_stats) > 1
        assert result.skyline_offsets.size == skyline_numpy(points).size

    def test_overwrite_output(self, fs, points):
        write_points_csv(fs, "/in/p.csv", points)
        run_mr_skyline_files(fs, "/in/p.csv", "/out/sky")
        with pytest.raises(FileSystemError):
            run_mr_skyline_files(fs, "/in/p.csv", "/out/sky")
        run_mr_skyline_files(fs, "/in/p.csv", "/out/sky", overwrite=True)

    def test_counters_track_points(self, fs, points):
        write_points_csv(fs, "/in/p.csv", points)
        result = run_mr_skyline_files(fs, "/in/p.csv", "/out/sky")
        assert result.counters.value("skyline", "points_mapped") == len(points)

    def test_grid_pruning_active_in_2d(self, fs):
        pts = np.random.default_rng(1).random((500, 2))
        write_points_csv(fs, "/in/p2.csv", pts)
        result = run_mr_skyline_files(
            fs, "/in/p2.csv", "/out/p2", method="grid", num_partitions=4
        )
        assert result.counters.value("skyline", "points_pruned") > 0
        assert np.allclose(
            np.sort(result.skyline_points, axis=0),
            np.sort(pts[skyline_numpy(pts)], axis=0),
        )
