"""Tracked session threads and the bounded-join ``stop`` path.

``ServingTCPServer`` must know its live sessions: a clean stop joins
them (bounded) so in-flight responses finish and WAL appends are never
cut mid-frame, and whatever the bound abandons is *reported* in the
``server.stop`` event rather than silently reaped at process exit.
"""

import threading

from repro.observability.events import get_events
from repro.serving.client import ServingClient
from repro.serving.server import make_tcp_server
from repro.serving.service import SkylineService

from tests.serving.harness import wait_for_port


def _server():
    server = make_tcp_server(SkylineService())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    wait_for_port(str(host), int(port))
    return server, thread, str(host), int(port)


def _stop_events():
    return [e for e in get_events().tail(50) if e.kind == "server.stop"]


class TestStop:
    def test_clean_stop_joins_everything(self):
        server, thread, host, port = _server()
        with ServingClient.connect(host, port) as client:
            assert client.ping()["pong"] is True
            assert server.live_sessions() == 1
        # The client hung up; its session thread unwinds on EOF.
        abandoned = server.stop()
        assert abandoned == 0
        server.server_close()
        thread.join(timeout=10)
        assert not thread.is_alive()
        (event,) = _stop_events()
        assert event.attrs["abandoned"] == 0

    def test_sessions_blocked_past_the_bound_are_reported(self):
        server, thread, host, port = _server()
        client = ServingClient.connect(host, port)
        try:
            assert client.ping()["pong"] is True
            # The session sits in recv with the client still attached: a
            # tight join bound must give up on it and say so.
            abandoned = server.stop(join_timeout_s=0.2)
            assert abandoned == 1
            (event,) = _stop_events()
            assert event.attrs["abandoned"] == 1
        finally:
            client.close()
            server.server_close()
            thread.join(timeout=10)

    def test_stop_is_idempotent(self):
        server, thread, host, port = _server()
        assert server.stop() == 0
        assert server.stop() == 0, "second stop must be a no-op"
        assert len(_stop_events()) == 1, "one stop, one event"
        server.server_close()
        thread.join(timeout=10)

    def test_shutdown_op_stops_the_whole_server(self):
        server, thread, host, port = _server()
        with ServingClient.connect(host, port) as client:
            assert client.shutdown()["bye"] is True
        thread.join(timeout=10)
        assert not thread.is_alive(), "serve_forever must have returned"
        for _ in range(100):
            if _stop_events():
                break
            threading.Event().wait(0.02)
        assert _stop_events(), "the shutdown op must go through stop()"
        server.server_close()
