"""Clean fixture: pure UDFs wired into a Job — zero udf-purity findings."""


class Mapper:
    pass


class Reducer:
    pass


class PointMapper(Mapper):
    def map(self, key, value):
        yield key % 4, value * 2


class SumReducer(Reducer):
    def reduce(self, key, values):
        total = 0
        for value in values:
            total += value
        yield key, total


class Job:
    def __init__(self, name, mapper, reducer):
        self.name = name
        self.mapper = mapper
        self.reducer = reducer


JOB = Job("clean", PointMapper, SumReducer)
