"""Tests for the straggler / speculative-execution simulation model."""

import pytest

from repro.mapreduce import Job, JobConf, Mapper, Reducer, run_job
from repro.mapreduce.cluster import ClusterSpec
from repro.mapreduce.simulation import (
    StragglerSpec,
    simulate_job,
    simulate_job_with_stragglers,
)


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


@pytest.fixture(scope="module")
def measured():
    job = Job(
        name="wc",
        mapper=TokenMapper,
        reducer=SumReducer,
        conf=JobConf(num_reducers=4, num_map_tasks=8),
    )
    records = [(None, "alpha beta gamma delta " * 10) for _ in range(400)]
    return run_job(job, records=records)


CLUSTER = ClusterSpec(num_nodes=2, speed_factor=1000.0)


class TestSpecValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            StragglerSpec(probability=1.5)
        with pytest.raises(ValueError):
            StragglerSpec(probability=-0.1)

    def test_slowdown_bound(self):
        with pytest.raises(ValueError):
            StragglerSpec(slowdown=0.5)

    def test_trigger_bound(self):
        with pytest.raises(ValueError):
            StragglerSpec(trigger_factor=0.0)


class TestPerturb:
    def test_no_stragglers_identity(self):
        spec = StragglerSpec(probability=0.0)
        assert spec.perturb([1.0, 2.0], 0.1) == [1.0, 2.0]

    def test_all_straggle_without_speculation(self):
        spec = StragglerSpec(probability=1.0, slowdown=3.0, speculative=False)
        assert spec.perturb([1.0, 2.0], 0.0) == [3.0, 6.0]

    def test_speculation_caps_slowdown(self):
        spec = StragglerSpec(
            probability=1.0, slowdown=100.0, speculative=True, trigger_factor=1.0
        )
        out = spec.perturb([1.0, 1.0, 1.0], launch_s=0.5)
        # backup done at median(1.0) * 1.0 + nominal 1.0 + launch 0.5 = 2.5
        assert out == [2.5, 2.5, 2.5]

    def test_speculation_never_worse_than_plain_slowdown(self):
        slow = StragglerSpec(probability=1.0, slowdown=4.0, speculative=False)
        spec = StragglerSpec(probability=1.0, slowdown=4.0, speculative=True)
        durations = [0.5, 1.0, 2.0, 4.0]
        for a, b in zip(spec.perturb(durations, 0.1), slow.perturb(durations, 0.1)):
            assert a <= b + 1e-12

    def test_deterministic_by_seed(self):
        spec = StragglerSpec(probability=0.5, seed=3)
        durations = [1.0] * 50
        assert spec.perturb(durations, 0.1) == spec.perturb(durations, 0.1)
        other = StragglerSpec(probability=0.5, seed=4)
        assert spec.perturb(durations, 0.1) != other.perturb(durations, 0.1)

    def test_empty(self):
        assert StragglerSpec().perturb([], 0.1) == []


class TestSimulation:
    def test_stragglers_never_speed_up(self, measured):
        base = simulate_job(measured, CLUSTER)
        perturbed = simulate_job_with_stragglers(
            measured, CLUSTER, StragglerSpec(probability=0.3, slowdown=8.0, seed=1)
        )
        assert perturbed.total_s >= base.total_s - 1e-9

    def test_speculation_recovers_time(self, measured):
        no_spec = simulate_job_with_stragglers(
            measured,
            CLUSTER,
            StragglerSpec(probability=0.5, slowdown=20.0, speculative=False, seed=2),
        )
        with_spec = simulate_job_with_stragglers(
            measured,
            CLUSTER,
            StragglerSpec(probability=0.5, slowdown=20.0, speculative=True, seed=2),
        )
        assert with_spec.total_s < no_spec.total_s

    def test_zero_probability_matches_baseline(self, measured):
        base = simulate_job(measured, CLUSTER)
        same = simulate_job_with_stragglers(
            measured, CLUSTER, StragglerSpec(probability=0.0)
        )
        assert same.total_s == pytest.approx(base.total_s)
