"""Branch-and-Bound Skyline (BBS) — Papadias, Tao, Fu & Seeger, SIGMOD'03.

The classic I/O-optimal single-machine skyline algorithm, cited by the
paper as [25].  Entries (R-tree nodes or points) are popped from a priority
queue ordered by *mindist* (here the L1 distance of the entry's lower
corner from the origin — a monotone score):

* a popped entry dominated by the current skyline is discarded — and with
  it the entire subtree, which is where the algorithm saves its work;
* a popped point is guaranteed skyline (every point that could dominate it
  has a smaller mindist and was therefore examined first);
* a popped node is expanded, its children pushed.

Dominance of an MBR is tested against its lower corner: if some skyline
point dominates the MBR's lower corner, it dominates every point inside.

Useful here both as a fourth independent oracle for the property tests and
as the efficiency yardstick in the algorithm micro-benchmarks (it performs
by far the fewest dominance tests on low-dimensional data).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.dominance import DominanceCounter, validate_points
from repro.core.rtree import DEFAULT_LEAF_CAPACITY, RTree

__all__ = ["BBSResult", "bbs_skyline", "bbs_skyline_progressive"]


@dataclass(slots=True)
class BBSResult:
    """Outcome of one BBS run."""

    indices: np.ndarray
    dominance_tests: int
    nodes_expanded: int
    entries_pruned: int

    def points(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=np.float64)[self.indices]


def _dominated(window: np.ndarray, probe: np.ndarray) -> bool:
    """True iff some window row dominates ``probe`` (minimisation)."""
    if window.shape[0] == 0:
        return False
    le = window <= probe
    lt = window < probe
    return bool(np.any(le.all(axis=1) & lt.any(axis=1)))


def bbs_skyline(
    points: np.ndarray,
    *,
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    counter: DominanceCounter | None = None,
    tree: RTree | None = None,
) -> BBSResult:
    """Compute the skyline of ``points`` with branch-and-bound over an R-tree.

    Parameters
    ----------
    points:
        ``(n, d)`` array, minimisation in every dimension.
    leaf_capacity:
        R-tree leaf size used when ``tree`` is not supplied.
    tree:
        A pre-built :class:`~repro.core.rtree.RTree` over the same points
        (index reuse across repeated queries).

    Returns
    -------
    :class:`BBSResult` with ascending input indices.
    """
    pts = validate_points(points)
    n, d = pts.shape
    if tree is None:
        tree = RTree(pts, leaf_capacity=leaf_capacity)
    elif tree.points.shape != pts.shape or not np.array_equal(tree.points, pts):
        raise ValueError("supplied tree was built over different points")

    tests = 0
    expanded = 0
    pruned = 0
    skyline: list[int] = []
    window = np.empty((0, d))

    # Heap entries: (mindist, rank, lex_tiebreak, seq, kind, payload).
    # Ordering is correctness-critical under floating-point ties: a
    # dominator's coordinate sum can round to the same float as its
    # victim's.  Nodes (rank 0) pop before points (rank 1) at equal
    # mindist, so a subtree holding the dominator is expanded before the
    # victim is emitted; among tied points the lexicographic tiebreak puts
    # the dominator first (dominance implies lexicographic order).
    tie = itertools.count()
    heap: list = []
    if n:
        root = tree.root
        heapq.heappush(
            heap,
            (root.mindist_key(), 0, tuple(root.lower), next(tie), "node", root),
        )

    while heap:
        _, _, _, _, kind, payload = heapq.heappop(heap)
        if kind == "point":
            probe = pts[payload]
        else:
            probe = payload.lower
        tests += window.shape[0]
        if _dominated(window, probe):
            pruned += 1
            continue
        if kind == "point":
            # Monotone mindist order guarantees no later pop dominates it.
            skyline.append(int(payload))
            window = np.vstack([window, pts[payload : payload + 1]])
            continue
        expanded += 1
        if payload.is_leaf:
            for idx in payload.point_indices:
                heapq.heappush(
                    heap,
                    (
                        float(pts[idx].sum()),
                        1,
                        tuple(pts[idx]),
                        next(tie),
                        "point",
                        int(idx),
                    ),
                )
        else:
            for child in payload.children:
                heapq.heappush(
                    heap,
                    (
                        child.mindist_key(),
                        0,
                        tuple(child.lower),
                        next(tie),
                        "node",
                        child,
                    ),
                )

    if counter is not None:
        counter.add(tests, "bbs")
    return BBSResult(
        indices=np.array(sorted(skyline), dtype=np.intp),
        dominance_tests=tests,
        nodes_expanded=expanded,
        entries_pruned=pruned,
    )


def bbs_skyline_progressive(
    points: np.ndarray,
    *,
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    tree: RTree | None = None,
) -> Iterator[int]:
    """Yield skyline indices *progressively*, best mindist first.

    BBS is naturally progressive (the property the paper's citations [21]
    and [29] pursue): every emitted point is final the moment it appears,
    so callers can stream the first few answers of an interactive query
    without paying for the full result.  Yields the same index set as
    :func:`bbs_skyline`, ordered by ascending coordinate sum.
    """
    pts = validate_points(points)
    n, d = pts.shape
    if tree is None:
        tree = RTree(pts, leaf_capacity=leaf_capacity)
    elif tree.points.shape != pts.shape or not np.array_equal(tree.points, pts):
        raise ValueError("supplied tree was built over different points")

    window = np.empty((0, d))
    tie = itertools.count()
    heap: list = []
    if n:
        root = tree.root
        heapq.heappush(
            heap,
            (root.mindist_key(), 0, tuple(root.lower), next(tie), "node", root),
        )
    while heap:
        _, _, _, _, kind, payload = heapq.heappop(heap)
        probe = pts[payload] if kind == "point" else payload.lower
        if _dominated(window, probe):
            continue
        if kind == "point":
            window = np.vstack([window, pts[payload : payload + 1]])
            yield int(payload)
            continue
        if payload.is_leaf:
            for idx in payload.point_indices:
                heapq.heappush(
                    heap,
                    (
                        float(pts[idx].sum()),
                        1,
                        tuple(pts[idx]),
                        next(tie),
                        "point",
                        int(idx),
                    ),
                )
        else:
            for child in payload.children:
                heapq.heappush(
                    heap,
                    (
                        child.mindist_key(),
                        0,
                        tuple(child.lower),
                        next(tie),
                        "node",
                        child,
                    ),
                )
