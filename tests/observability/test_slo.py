"""SLO burn-rate math on a fake clock: exact numbers, rollover, idle."""

import json

import pytest

from repro.observability.slo import (
    DEFAULT_WINDOWS_S,
    PAGE_BURN,
    TICKET_BURN,
    SLObjective,
    SLOTracker,
    default_objectives,
)


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self, start=1000.0):
        self.now = start

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds

    def advance(self, seconds):
        self.now += seconds


def _tracker(**kwargs):
    clock = FakeClock()
    tracker = SLOTracker(clock=clock, **kwargs)
    return tracker, clock


def _objective(report, name):
    for obj in report["objectives"]:
        if obj["name"] == name:
            return obj
    raise AssertionError(f"no objective {name!r} in {report}")


class TestObjective:
    def test_target_must_be_open_interval(self):
        with pytest.raises(ValueError, match="target"):
            SLObjective("a", 1.0)
        with pytest.raises(ValueError, match="target"):
            SLObjective("a", 0.0)

    def test_latency_threshold_positive(self):
        with pytest.raises(ValueError, match="threshold"):
            SLObjective("lat", 0.95, latency_threshold_s=0.0)

    def test_goodness_rules(self):
        avail = SLObjective("availability", 0.999)
        lat = SLObjective("latency", 0.95, latency_threshold_s=0.25)
        assert avail.is_good(10.0, True)        # slow but answered
        assert not avail.is_good(0.001, False)  # fast but failed
        assert lat.is_good(0.25, True)          # at threshold counts
        assert not lat.is_good(0.26, True)
        assert not lat.is_good(0.01, False)

    def test_default_objectives_pair(self):
        objectives = default_objectives()
        assert [o.name for o in objectives] == ["availability", "latency"]
        assert objectives[1].latency_threshold_s == 0.25

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOTracker([SLObjective("x", 0.9), SLObjective("x", 0.99)])


class TestBurnMath:
    def test_no_traffic_is_ok_with_zero_burn(self):
        tracker, _ = _tracker()
        report = tracker.evaluate()
        assert report["state"] == "ok"
        for obj in report["objectives"]:
            for window in obj["windows"].values():
                assert window == {
                    "total": 0, "good": 0, "error_rate": 0.0, "burn_rate": 0.0,
                }

    def test_exact_burn_numbers(self):
        # 10% errors against a 99.9% availability target: burn = 0.1 / 0.001
        # = 100x in every window that saw the traffic.
        tracker, _ = _tracker(
            objectives=[SLObjective("availability", 0.999)]
        )
        for i in range(10):
            tracker.record(0.01, ok=(i != 0))
        windows = _objective(tracker.evaluate(), "availability")["windows"]
        for name in DEFAULT_WINDOWS_S:
            assert windows[name]["total"] == 10
            assert windows[name]["good"] == 9
            assert windows[name]["error_rate"] == pytest.approx(0.1)
            assert windows[name]["burn_rate"] == pytest.approx(100.0)

    def test_latency_objective_burns_on_slow_answers(self):
        tracker, _ = _tracker(
            objectives=[SLObjective("latency", 0.95, latency_threshold_s=0.25)]
        )
        for _ in range(8):
            tracker.record(0.01, ok=True)
        for _ in range(2):
            tracker.record(1.5, ok=True)  # answered, but slow
        windows = _objective(tracker.evaluate(), "latency")["windows"]
        # 20% slow against a 5% budget: burn 4x.
        assert windows["5m"]["burn_rate"] == pytest.approx(4.0)

    def test_page_requires_fast_pair(self):
        # Full-outage burst now: 5m and 1h both burn at cap => page.
        tracker, _ = _tracker(
            objectives=[SLObjective("availability", 0.999)]
        )
        for _ in range(20):
            tracker.record(0.01, ok=False)
        report = tracker.evaluate()
        assert report["state"] == "page"
        assert _objective(report, "availability")["state"] == "page"

    def test_page_clears_when_short_window_recovers(self):
        # An old burst still inside 1h but outside 5m must NOT page: the
        # fast window has reset.
        tracker, clock = _tracker(
            objectives=[SLObjective("availability", 0.999)]
        )
        for _ in range(20):
            tracker.record(0.01, ok=False)
        clock.advance(600.0)  # burst leaves the 5m window, stays in 1h
        for _ in range(5):
            tracker.record(0.01, ok=True)
        report = tracker.evaluate()
        obj = _objective(report, "availability")
        assert obj["windows"]["5m"]["burn_rate"] == 0.0
        assert obj["windows"]["1h"]["burn_rate"] >= PAGE_BURN
        assert obj["state"] != "page"

    def test_slow_leak_tickets_without_paging(self):
        # ~0.4% errors against a 0.1% budget: burn 4x on the slow pair but
        # nowhere near 14.4x — a ticket, not a page.
        tracker, clock = _tracker(
            objectives=[SLObjective("availability", 0.999)],
        )
        for _ in range(240):
            for _ in range(249):
                tracker.record(0.01, ok=True)
            tracker.record(0.01, ok=False)
            clock.advance(300.0)  # spread over 20h
        report = tracker.evaluate()
        obj = _objective(report, "availability")
        assert obj["state"] == "ticket"
        assert obj["windows"]["3d"]["burn_rate"] >= TICKET_BURN
        assert obj["windows"]["5m"]["burn_rate"] < PAGE_BURN
        assert report["state"] == "ticket"

    def test_window_rollover_forgets_old_errors(self):
        tracker, clock = _tracker(
            objectives=[SLObjective("availability", 0.999)]
        )
        for _ in range(10):
            tracker.record(0.01, ok=False)
        clock.advance(DEFAULT_WINDOWS_S["3d"] + tracker.bucket_s * 2)
        tracker.record(0.01, ok=True)  # triggers trim
        windows = _objective(tracker.evaluate(), "availability")["windows"]
        for name in DEFAULT_WINDOWS_S:
            assert windows[name]["total"] == 1
            assert windows[name]["burn_rate"] == 0.0

    def test_report_is_json_safe(self):
        tracker, _ = _tracker()
        tracker.record(0.01, ok=False)
        json.dumps(tracker.evaluate(), allow_nan=False)

    def test_overall_state_is_worst_objective(self):
        tracker, _ = _tracker(
            objectives=[
                SLObjective("availability", 0.999),
                SLObjective("latency", 0.95, latency_threshold_s=10.0),
            ]
        )
        for _ in range(20):
            tracker.record(0.01, ok=False)
        report = tracker.evaluate()
        assert report["state"] == "page"


class TestBucketing:
    def test_requests_in_same_slice_share_a_bucket(self):
        tracker, _ = _tracker(bucket_s=10.0)
        tracker.record(0.01)
        tracker.record(0.02)
        assert len(tracker._buckets) == 1
        assert tracker._buckets[0].total == 2

    def test_trim_keeps_memory_bounded(self):
        tracker, clock = _tracker(
            bucket_s=10.0, windows_s={"5m": 300.0}
        )
        for _ in range(200):
            tracker.record(0.01)
            clock.advance(10.0)
        # horizon 300s / 10s buckets = ~30 live + 1 straddling slice
        assert len(tracker._buckets) <= 32

    def test_bucket_s_validated(self):
        with pytest.raises(ValueError, match="bucket_s"):
            SLOTracker(bucket_s=0)

    def test_windows_required(self):
        with pytest.raises(ValueError, match="window"):
            SLOTracker(windows_s={})
