"""Columnar point blocks — the representation behind the kernel seam.

Every hot path of the reproduction moves sets of points around: the engine
ships ``(index_array, row_matrix)`` batches between map and reduce tasks,
the incremental structure keeps per-partition member lists, the serving
store snapshots memberships.  :class:`PointBlock` gives those call sites one
columnar value type — a contiguous ``(n, d)`` float64 matrix plus a parallel
vector of **stable point ids** — with cheap slicing, masking and
concatenation, so the vectorised dominance kernels
(:mod:`repro.core.kernels`) can operate on whole blocks instead of one
Python object per point.

Design rules:

* **ids travel with rows.**  Every masking/slicing operation applies to both
  columns at once; a block can never hold rows whose ids drifted.
* **float64, 2-D, C-contiguous, NaN-free** — enforced at construction via
  :func:`repro.core.dominance.validate_points`, so kernels never re-check.
* **round-trips with the legacy API.**  :meth:`PointBlock.from_tuple` /
  :meth:`PointBlock.to_tuple` convert to the engine's ``(indices, rows)``
  record payloads, and :func:`concat_blocks` replaces the
  ``np.concatenate`` + ``np.vstack`` pairs in reduce UDFs — module
  boundaries keep speaking arrays, so nothing downstream of a boundary has
  to know which representation produced its input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.core.dominance import validate_points

__all__ = ["PointBlock", "concat_blocks"]


@dataclass(frozen=True)
class PointBlock:
    """An immutable columnar batch of points with stable ids.

    ``ids[i]`` names ``rows[i]`` forever: every derived block (slices,
    masks, concatenations) carries the surviving ids along, which is what
    lets the MapReduce skyline jobs return *input indices* even though the
    matrices they crunch have been filtered, partitioned and merged many
    times over.
    """

    ids: np.ndarray  # (n,) intp, the stable point identities
    rows: np.ndarray  # (n, d) float64, C-contiguous, NaN-free

    def __post_init__(self) -> None:
        rows = validate_points(self.rows, name="rows")
        if not rows.flags["C_CONTIGUOUS"]:
            rows = np.ascontiguousarray(rows)
        ids = np.asarray(self.ids, dtype=np.intp).reshape(-1)
        if ids.shape[0] != rows.shape[0]:
            raise ValueError(
                f"ids has {ids.shape[0]} entries for {rows.shape[0]} rows"
            )
        # frozen dataclass: route the coerced arrays around __setattr__.
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "rows", rows)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_rows(
        cls, rows: np.ndarray, ids: np.ndarray | Sequence[int] | None = None
    ) -> "PointBlock":
        """Wrap a row matrix; ids default to ``0 … n-1``."""
        rows = validate_points(rows, name="rows")
        if ids is None:
            ids = np.arange(rows.shape[0], dtype=np.intp)
        return cls(ids=np.asarray(ids, dtype=np.intp), rows=rows)

    @classmethod
    def from_tuple(cls, pair: Tuple[np.ndarray, np.ndarray]) -> "PointBlock":
        """Adopt one legacy engine record payload ``(indices, rows)``."""
        indices, rows = pair
        return cls(ids=np.asarray(indices, dtype=np.intp), rows=rows)

    @classmethod
    def empty(cls, d: int) -> "PointBlock":
        """A zero-point block of dimensionality ``d``."""
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        return cls(ids=np.empty(0, dtype=np.intp), rows=np.empty((0, d)))

    # -- legacy round-trip ------------------------------------------------------

    def to_tuple(self) -> Tuple[np.ndarray, np.ndarray]:
        """The engine's ``(indices, rows)`` payload shape, unchanged."""
        return self.ids, self.rows

    # -- shape ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    @property
    def dims(self) -> int:
        return int(self.rows.shape[1])

    # -- columnar ops -----------------------------------------------------------

    def take(self, selector: np.ndarray) -> "PointBlock":
        """Rows selected by a boolean mask or an index array, ids kept."""
        sel = np.asarray(selector)
        if sel.dtype == bool and sel.shape != (len(self),):
            raise ValueError(
                f"mask has shape {sel.shape}, expected ({len(self)},)"
            )
        return PointBlock(ids=self.ids[sel], rows=self.rows[sel])

    def slice(self, start: int, stop: int) -> "PointBlock":
        """Contiguous row range ``[start, stop)`` — a view, no copy."""
        return PointBlock(ids=self.ids[start:stop], rows=self.rows[start:stop])

    def chunks(self, size: int) -> Iterable["PointBlock"]:
        """Stream the block as consecutive sub-blocks of ``size`` rows."""
        if size < 1:
            raise ValueError(f"chunk size must be >= 1, got {size}")
        for start in range(0, len(self), size):
            yield self.slice(start, min(start + size, len(self)))

    def sort_by(self, order: np.ndarray) -> "PointBlock":
        """Reorder rows (and ids) by a permutation array."""
        return self.take(np.asarray(order, dtype=np.intp))

    def with_ids_ascending(self) -> "PointBlock":
        """Rows permuted so ids run ascending (canonical output order)."""
        return self.sort_by(np.argsort(self.ids, kind="stable"))


def concat_blocks(blocks: Sequence[PointBlock]) -> PointBlock:
    """Vertical concatenation, preserving ids; at least one block required.

    The columnar replacement for the reduce-UDF idiom
    ``np.concatenate([b[0] ...]) / np.vstack([b[1] ...])``.
    """
    if not blocks:
        raise ValueError("concat_blocks needs at least one block")
    dims = {b.dims for b in blocks}
    if len(dims) != 1:
        raise ValueError(f"blocks disagree on dimensionality: {sorted(dims)}")
    if len(blocks) == 1:
        return blocks[0]
    return PointBlock(
        ids=np.concatenate([b.ids for b in blocks]),
        rows=np.vstack([b.rows for b in blocks]),
    )
