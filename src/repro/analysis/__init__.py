"""Static contract checker for the MapReduce engine (``repro lint``).

The engine's correctness rests on contracts no type checker sees: UDFs must
be pure (executor and streaming/batch parity), everything crossing the
process-pool boundary must pickle, lock-guarded state must stay guarded,
and broad ``except`` must not swallow task failures.  This package checks
them statically — an AST-walking rule framework (registry, per-rule
severity, ``# repro: allow[rule-id]`` suppressions, text/JSON reporters,
baseline files) plus four codebase-specific rule packs.

Programmatic use::

    from repro.analysis import run_lint, render_text

    result = run_lint(["src/repro"])
    print(render_text(result))
    raise SystemExit(result.exit_code)

See ``docs/static_analysis.md`` for the rule catalogue and how to add a
rule.
"""

from repro.analysis.base import Rule, all_rule_ids, all_rules, register, rules_by_id
from repro.analysis.baseline import BaselineError, load_baseline, write_baseline
from repro.analysis.engine import (
    PARSE_RULE_ID,
    LintResult,
    changed_python_files,
    run_lint,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Module, Project
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.suppressions import PRAGMA_RULE_ID, parse_suppressions

__all__ = [
    "Rule",
    "register",
    "all_rules",
    "all_rule_ids",
    "rules_by_id",
    "Finding",
    "Severity",
    "Project",
    "Module",
    "LintResult",
    "run_lint",
    "render_text",
    "render_json",
    "render_sarif",
    "changed_python_files",
    "load_baseline",
    "write_baseline",
    "BaselineError",
    "parse_suppressions",
    "PRAGMA_RULE_ID",
    "PARSE_RULE_ID",
]
