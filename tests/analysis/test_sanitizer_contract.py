"""Contract: the sanitizer-observed acquisition graph is a subgraph of the
statically predicted one.

The static flow layer over-approximates (it reports every ordering that
*can* happen); the runtime sanitizer under-approximates (only orderings
that *did* happen).  Driving real serving traffic under the sanitizer must
therefore never produce an edge the static analysis missed — if it does,
either the call-graph resolver lost an edge or the runtime attribution is
mislabeling a lock.
"""

import os

import numpy as np
import pytest

import repro
from repro.analysis.flow import LockAnalysis
from repro.analysis.project import Project
from repro.observability.metrics import MetricsRegistry, set_metrics
from repro.observability.sanitizer import LockOrderSanitizer
from repro.serving.service import ServeConfig, SkylineService


@pytest.fixture(scope="module")
def static_edges():
    src = os.path.dirname(os.path.abspath(repro.__file__))
    project = Project.load([src])
    analysis = LockAnalysis.build(project)
    return analysis.edge_pairs()


def test_observed_acquisitions_are_a_static_subgraph(static_edges):
    sanitizer = LockOrderSanitizer(prefixes=("repro",)).install()
    registry = set_metrics(MetricsRegistry())  # fresh -> sanitized _lock
    try:
        rng = np.random.default_rng(7)
        service = SkylineService(ServeConfig(num_workers=1))
        service.register("contract", rng.random((64, 3)))
        service.stats()
    finally:
        sanitizer.uninstall()
        set_metrics(registry)
    observed = sanitizer.observed_edges()
    assert observed, "driving register+stats should nest at least one lock"
    unexplained = observed - static_edges
    assert not unexplained, (
        "sanitizer observed lock orderings the static analysis does not "
        f"predict: {sorted(unexplained)}"
    )
    assert sanitizer.inversions == []
