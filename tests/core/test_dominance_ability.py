"""Tests for the §IV dominance-ability theory (Theorems 1 and 2)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.dominance_ability import (
    delta_dominance,
    delta_lower_bound,
    dominance_ability_angle,
    dominance_ability_grid,
    empirical_dominance_ability,
)
from repro.core.partitioning import AngularPartitioner, GridPartitioner


class TestClosedForms:
    def test_eq3_example(self):
        # (x, y) = (1, 0.25), L = 1: D = (1 - 0.25 - 1*0.25) / 1 = 0.5
        assert dominance_ability_angle(1.0, 0.25, 1.0) == pytest.approx(0.5)

    def test_grid_example(self):
        assert dominance_ability_grid(0.5, 0.5, 1.0) == pytest.approx(0.25)

    def test_origin_point_dominates_whole_partition(self):
        assert dominance_ability_angle(0.0, 0.0, 1.0) == pytest.approx(1.0)
        assert dominance_ability_grid(0.0, 0.0, 1.0) == pytest.approx(1.0)

    def test_delta_matches_difference(self):
        x, y, L = 0.6, 0.2, 1.0
        assert delta_dominance(x, y, L) == pytest.approx(
            dominance_ability_angle(x, y, L) - dominance_ability_grid(x, y, L)
        )

    def test_bound_at_zero(self):
        assert delta_lower_bound(0.0, 1.0) == 0.0

    def test_invalid_L(self):
        with pytest.raises(ValueError):
            dominance_ability_angle(0.1, 0.1, 0.0)
        with pytest.raises(ValueError):
            delta_lower_bound(0.5, -1.0)

    def test_point_outside_space_rejected(self):
        with pytest.raises(ValueError):
            dominance_ability_grid(3.0, 0.0, 1.0)


class TestTheorem2:
    @given(
        x=st.floats(0.0, 2.0),
        frac=st.floats(0.0, 1.0),
        L=st.floats(0.5, 10.0),
    )
    @settings(max_examples=200)
    def test_property_bound_holds_under_premise(self, x, frac, L):
        """Theorem 2: for y ≤ x/2, ΔD ≥ x/(2L²)(L − x/2)."""
        x = x * L  # scale into [0, 2L]
        y = frac * (x / 2.0)  # the paper's premise y <= x/2
        assume(y <= 2 * L)
        delta = delta_dominance(x, y, L)
        bound = delta_lower_bound(x, L)
        assert delta >= bound - 1e-12

    @given(x=st.floats(0.01, 0.99), L=st.floats(0.5, 5.0))
    @settings(max_examples=100)
    def test_property_bound_positive_inside_partition(self, x, L):
        """Within the near-axis partition (x < L), the bound is strictly
        positive: MR-Angle strictly beats MR-Grid there."""
        assert delta_lower_bound(x * L, L) > 0

    def test_equality_at_y_equals_half_x(self):
        # The proof's inequality is tight at y = x/2.
        x, L = 0.8, 1.0
        assert delta_dominance(x, x / 2, L) == pytest.approx(
            delta_lower_bound(x, L)
        )


class TestEmpirical:
    @pytest.fixture(scope="class")
    def square(self):
        rng = np.random.default_rng(0)
        return rng.random((100_000, 2)) * 2.0  # [0, 2L]² with L = 1

    def test_matches_closed_form_angle(self, square):
        # Paper geometry: equal-area square sectors with boundary slopes
        # 1/2, 1, 2 (Theorem 1's premise "y <= x/2" names the first one).
        partitioner = AngularPartitioner(
            4, boundaries=[np.arctan([0.5, 1.0, 2.0])]
        ).fit(square)
        for x in (0.3, 0.6, 0.9):
            y = x / 4.0
            emp = empirical_dominance_ability(
                np.array([x, y]), square, partitioner
            )
            closed = dominance_ability_angle(x, y, 1.0)
            assert emp.ability == pytest.approx(closed, abs=0.03)

    def test_matches_closed_form_grid(self, square):
        partitioner = GridPartitioner(4, cells_per_dim=[2, 2]).fit(square)
        x, y = 0.5, 0.125
        emp = empirical_dominance_ability(np.array([x, y]), square, partitioner)
        assert emp.ability == pytest.approx(
            dominance_ability_grid(x, y, 1.0), abs=0.03
        )

    def test_empty_partition(self):
        pts = np.random.default_rng(1).random((100, 2))
        partitioner = GridPartitioner(4, cells_per_dim=[2, 2]).fit(pts)
        # Probe a partition that the tiny sample may populate; ensure the
        # API degrades gracefully when it does not.
        emp = empirical_dominance_ability(
            np.array([0.99, 0.99]), pts[:1], partitioner
        )
        assert emp.partition_total in (0, 1)

    def test_dimension_mismatch(self):
        pts = np.random.default_rng(2).random((10, 2))
        partitioner = GridPartitioner(4).fit(pts)
        with pytest.raises(ValueError):
            empirical_dominance_ability(np.zeros(3), pts, partitioner)

    def test_counts_consistent(self, square):
        partitioner = GridPartitioner(4, cells_per_dim=[2, 2]).fit(square)
        emp = empirical_dominance_ability(
            np.array([0.2, 0.2]), square, partitioner
        )
        assert 0 <= emp.dominated <= emp.partition_total
        assert emp.ability == pytest.approx(emp.dominated / emp.partition_total)
