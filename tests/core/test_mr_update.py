"""Tests for the incremental MapReduce update path (§II batch arrivals)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.mr_skyline import run_mr_skyline, update_mr_skyline
from repro.core.skyline import skyline_numpy


@pytest.fixture(scope="module")
def base_points():
    return np.random.default_rng(0).random((3000, 4))


@pytest.fixture(scope="module")
def previous(base_points):
    return run_mr_skyline(base_points, method="angle", num_workers=4)


class TestCorrectness:
    def test_matches_full_recompute(self, base_points, previous):
        new = np.random.default_rng(1).random((500, 4))
        updated = update_mr_skyline(previous, base_points, new)
        combined = np.vstack([base_points, new])
        assert np.array_equal(updated.global_indices, skyline_numpy(combined))

    def test_chained_updates(self, base_points, previous):
        rng = np.random.default_rng(2)
        current = previous
        pts = base_points
        for _ in range(3):
            new = rng.random((200, 4))
            current = update_mr_skyline(current, pts, new)
            pts = np.vstack([pts, new])
            assert np.array_equal(current.global_indices, skyline_numpy(pts))

    def test_single_new_point_dominating_everything(self, base_points, previous):
        new = np.zeros((1, 4))
        updated = update_mr_skyline(previous, base_points, new)
        assert updated.global_indices.tolist() == [len(base_points)]

    def test_single_dominated_new_point(self, base_points, previous):
        new = np.ones((1, 4)) * 2  # worse than everything in [0,1]^4
        updated = update_mr_skyline(previous, base_points, new)
        assert np.array_equal(updated.global_indices, previous.global_indices)

    def test_untouched_partitions_keep_local_skylines(self, base_points, previous):
        # Insert points into exactly one sector and check other sectors'
        # local skylines are reused object-identically.
        partitioner = previous.partitioner
        target_pid = 0
        probe = base_points[previous.partition_ids == target_pid][:1]
        new = np.clip(probe * 0.99, 0, None)
        assert partitioner.assign(new)[0] == target_pid
        updated = update_mr_skyline(previous, base_points, new)
        for pid, sky in updated.local_skylines.items():
            if pid != target_pid:
                assert sky is previous.local_skylines[pid]

    def test_grid_pruning_in_update(self):
        rng = np.random.default_rng(3)
        pts = rng.random((2000, 2))
        prev = run_mr_skyline(pts, method="grid", num_partitions=4)
        new = rng.random((400, 2)) * 0.4 + 0.6  # top-right, mostly prunable
        updated = update_mr_skyline(prev, pts, new)
        combined = np.vstack([pts, new])
        assert np.array_equal(updated.global_indices, skyline_numpy(combined))
        assert updated.points_pruned > prev.points_pruned

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 40), st.integers(2, 3)),
            elements=st.floats(0, 1, allow_nan=False),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_property_arbitrary_arrivals(self, new):
        pts = np.random.default_rng(4).random((500, new.shape[1]))
        prev = run_mr_skyline(pts, method="angle", num_workers=2)
        updated = update_mr_skyline(prev, pts, new)
        combined = np.vstack([pts, new])
        assert np.array_equal(updated.global_indices, skyline_numpy(combined))


class TestValidation:
    def test_dim_mismatch(self, base_points, previous):
        with pytest.raises(ValueError, match="dims"):
            update_mr_skyline(previous, base_points, np.ones((3, 2)))

    def test_points_count_mismatch(self, base_points, previous):
        with pytest.raises(ValueError, match="covers"):
            update_mr_skyline(previous, base_points[:-5], np.ones((1, 4)))

    def test_missing_partitioner(self, base_points, previous):
        import dataclasses

        stripped = dataclasses.replace(previous, partitioner=None)
        with pytest.raises(ValueError, match="partitioner"):
            update_mr_skyline(stripped, base_points, np.ones((1, 4)))


class TestEfficiency:
    def test_update_does_less_work_than_recompute(self, base_points, previous):
        new = np.random.default_rng(5).random((100, 4))
        updated = update_mr_skyline(previous, base_points, new)
        combined = np.vstack([base_points, new])
        full = run_mr_skyline(combined, method="angle", num_workers=4)
        assert updated.dominance_tests < full.dominance_tests

    def test_index_spaces_concatenated(self, base_points, previous):
        new = np.random.default_rng(6).random((50, 4))
        updated = update_mr_skyline(previous, base_points, new)
        assert updated.partition_ids.shape[0] == len(base_points) + 50
