"""QoS-aware service composition — skyline pruning for workflow plans.

The paper motivates skyline processing with QoS-based *selection*; its
companion problem (references [8] Alrifai et al. and [32] Zeng et al.) is
QoS-based *composition*: a workflow of abstract tasks, each with many
candidate services, where the plan's end-to-end QoS aggregates the chosen
services' attributes.  The search space is the product of the candidate
sets, but a classic pruning theorem cuts it down:

    For monotone aggregation functions, every Pareto-optimal composition
    uses only *per-task skyline* services.

(Replace a dominated component with its dominator: every aggregate improves
or stays equal, so the original plan was dominated too.)

This module implements the standard aggregation rules over the
minimisation-oriented QoS space produced by
:meth:`repro.services.qos.QoSSchema.to_minimization`:

* ``"sum"``       — additive attributes (response time, latency, price);
* ``"max"``       — bottleneck attributes (a flipped throughput: the plan is
  as slow as its slowest member, i.e. the *largest* flipped value);
* ``"prob"``      — success-probability attributes (availability,
  reliability, successability): the plan succeeds iff every member does, so
  raw probabilities multiply — in flipped space ``1 − Π(1 − vᵢ/bound)``
  scaled back by the bound.

and a composition enumerator that prunes per task, composes aggregates, and
returns the Pareto-optimal plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Literal, Sequence

import numpy as np

from repro.core.dominance import validate_points
from repro.core.skyline import skyline

__all__ = [
    "AGGREGATIONS",
    "CompositionResult",
    "CompositionTask",
    "aggregate_qos",
    "skyline_compositions",
]

Aggregation = Literal["sum", "max", "prob"]

AGGREGATIONS: tuple[str, ...] = ("sum", "max", "prob")


@dataclass(slots=True)
class CompositionTask:
    """One abstract workflow task and its candidate services.

    ``candidates`` is an ``(m, d)`` minimisation-oriented QoS matrix;
    ``ids`` optionally names the rows (defaults to 0..m-1).
    """

    name: str
    candidates: np.ndarray
    ids: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.candidates = validate_points(self.candidates, name=self.name)
        if self.ids is None:
            self.ids = np.arange(self.candidates.shape[0], dtype=np.intp)
        else:
            self.ids = np.asarray(self.ids, dtype=np.intp)
            if self.ids.shape != (self.candidates.shape[0],):
                raise ValueError(
                    f"{self.name}: ids shape {self.ids.shape} does not match "
                    f"{self.candidates.shape[0]} candidates"
                )


def _check_aggregations(aggregations: Sequence[str], d: int) -> List[str]:
    aggs = list(aggregations)
    if len(aggs) != d:
        raise ValueError(f"{len(aggs)} aggregation rules for {d} attributes")
    for a in aggs:
        if a not in AGGREGATIONS:
            raise ValueError(f"unknown aggregation {a!r}; choose from {AGGREGATIONS}")
    return aggs


def aggregate_qos(
    component_rows: np.ndarray,
    aggregations: Sequence[str],
    *,
    prob_bounds: Sequence[float] | None = None,
) -> np.ndarray:
    """End-to-end QoS of one plan from its ``(k, d)`` component rows.

    ``prob_bounds[j]`` is the flip bound of a ``"prob"`` attribute (e.g. 100
    for percentages): a flipped value ``v`` encodes success probability
    ``1 − v/bound``, the plan's probability is the product, and the result
    is flipped back.  Defaults to 100 for every prob attribute.
    """
    rows = validate_points(component_rows, name="component_rows")
    k, d = rows.shape
    aggs = _check_aggregations(aggregations, d)
    out = np.empty(d)
    for j, agg in enumerate(aggs):
        col = rows[:, j]
        if agg == "sum":
            out[j] = col.sum()
        elif agg == "max":
            out[j] = col.max()
        else:  # prob
            bound = 100.0 if prob_bounds is None else float(prob_bounds[j])
            if bound <= 0:
                raise ValueError(f"prob bound must be positive, got {bound}")
            success = np.clip(1.0 - col / bound, 0.0, 1.0)
            out[j] = bound * (1.0 - success.prod())
    return out


@dataclass(slots=True)
class CompositionResult:
    """Pareto-optimal plans for a workflow."""

    #: (p, k) matrix: row = plan, column = chosen candidate id per task.
    plans: np.ndarray
    #: (p, d) aggregated QoS per plan (minimisation orientation).
    qos: np.ndarray
    #: number of raw combinations before per-task skyline pruning.
    search_space: int
    #: number of combinations actually enumerated (after pruning).
    enumerated: int

    def __len__(self) -> int:
        return int(self.plans.shape[0])


def skyline_compositions(
    tasks: Sequence[CompositionTask],
    aggregations: Sequence[str],
    *,
    prob_bounds: Sequence[float] | None = None,
    max_enumerations: int = 200_000,
) -> CompositionResult:
    """Pareto-optimal compositions of one service per task.

    Per-task skyline pruning is applied first (sound for the monotone
    aggregations implemented here), then the reduced product space is
    enumerated, aggregated vectorised per task-batch, and filtered to the
    global Pareto set.

    Raises if the pruned space still exceeds ``max_enumerations`` — callers
    should then reduce per-task candidates (e.g. via
    :func:`repro.core.representative.max_dominance_representatives`).
    """
    if not tasks:
        raise ValueError("need at least one task")
    d = tasks[0].candidates.shape[1]
    aggs = _check_aggregations(aggregations, d)
    for t in tasks:
        if t.candidates.shape[1] != d:
            raise ValueError(
                f"task {t.name!r} has {t.candidates.shape[1]} attributes, "
                f"expected {d}"
            )

    search_space = 1
    for t in tasks:
        search_space *= t.candidates.shape[0]

    # Per-task skyline pruning.
    pruned_rows: List[np.ndarray] = []
    pruned_ids: List[np.ndarray] = []
    enumerated = 1
    for t in tasks:
        keep = skyline(t.candidates, algorithm="sfs")
        pruned_rows.append(t.candidates[keep])
        pruned_ids.append(t.ids[keep])
        enumerated *= keep.size
    if enumerated > max_enumerations:
        raise ValueError(
            f"pruned composition space still has {enumerated:,} plans "
            f"(> {max_enumerations:,}); shrink per-task candidate sets"
        )

    # Enumerate the pruned product space.
    combos = list(product(*(range(r.shape[0]) for r in pruned_rows)))
    qos = np.empty((len(combos), d))
    for i, combo in enumerate(combos):
        rows = np.vstack(
            [pruned_rows[t_idx][c] for t_idx, c in enumerate(combo)]
        )
        qos[i] = aggregate_qos(rows, aggs, prob_bounds=prob_bounds)

    pareto = skyline(qos, algorithm="sfs")
    plans = np.array(
        [
            [int(pruned_ids[t_idx][combos[i][t_idx]]) for t_idx in range(len(tasks))]
            for i in pareto
        ],
        dtype=np.intp,
    ).reshape(pareto.size, len(tasks))
    return CompositionResult(
        plans=plans,
        qos=qos[pareto],
        search_space=search_space,
        enumerated=len(combos),
    )
