"""Read-only telemetry verbs: stats, health, slo, events, metrics."""

import io
import json

import numpy as np

from repro.observability.events import get_events
from repro.serving.protocol import handle_request
from repro.serving.server import serve_lines
from repro.serving.service import SkylineService


def _service(n=60):
    service = SkylineService()
    service.register("qws", np.random.default_rng(0).random((n, 3)) + 0.01)
    return service


def _query(service, dataset="qws"):
    return handle_request(service, {"op": "query", "dataset": dataset})


class TestStats:
    def test_shape_after_traffic(self):
        service = _service()
        _query(service)
        _query(service)  # second answer comes from cache
        response = handle_request(service, {"op": "stats"})
        assert response["ok"] is True
        assert response["datasets"]["qws"]["generation"] == 1
        assert response["counters"]["serve.requests"] == 2
        assert response["counters"]["serve.cache.hits"] == 1
        assert response["latency"]["count"] == 2
        assert response["uptime_s"] >= 0.0
        assert "store.generation" in response["events"]

    def test_gauges_include_partition_skew(self):
        service = _service()
        gauges = handle_request(service, {"op": "stats"})["gauges"]
        assert any(k.startswith("partition.skew.qws.") for k in gauges)

    def test_stats_is_json_safe(self):
        service = SkylineService()  # no traffic: empty histogram path
        response = handle_request(service, {"op": "stats"})
        json.dumps(response, allow_nan=False)


class TestHealthSlo:
    def test_idle_service_is_healthy(self):
        response = handle_request(_service(), {"op": "health"})
        assert response["status"] == "healthy"
        assert response["slo_state"] == "ok"
        assert response["datasets"] == 1

    def test_slo_report_lists_default_objectives(self):
        service = _service()
        _query(service)
        response = handle_request(service, {"op": "slo"})
        names = [o["name"] for o in response["objectives"]]
        assert names == ["availability", "latency"]
        assert response["state"] == "ok"
        windows = response["objectives"][0]["windows"]
        assert set(windows) == {"5m", "1h", "6h", "3d"}
        assert windows["5m"]["total"] == 1

    def test_sustained_errors_flip_health(self):
        service = _service()
        for _ in range(20):
            service.slo.record(0.01, ok=False)
        assert handle_request(service, {"op": "slo"})["state"] == "page"
        assert handle_request(service, {"op": "health"})["status"] == "unhealthy"


class TestEventsVerb:
    def test_tail_and_filters(self):
        service = _service()  # register emits store.generation
        response = handle_request(service, {"op": "events"})
        assert response["ok"] is True
        assert response["count"] == len(response["events"]) >= 1
        kinds = {e["kind"] for e in response["events"]}
        assert "store.generation" in kinds
        filtered = handle_request(
            service, {"op": "events", "kinds": ["store.*"], "n": 5}
        )
        assert all(e["kind"].startswith("store.") for e in filtered["events"])

    def test_since_seq_resumes(self):
        service = _service()
        cursor = handle_request(service, {"op": "events"})["events"][-1]["seq"]
        get_events().emit("serve.shed", dataset="qws", reason="test")
        fresh = handle_request(service, {"op": "events", "since_seq": cursor})
        assert [e["kind"] for e in fresh["events"]] == ["serve.shed"]

    def test_bad_kinds_rejected(self):
        response = handle_request(_service(), {"op": "events", "kinds": "serve.*"})
        assert response["ok"] is False
        assert "glob" in response["error"]


class TestMetricsVerb:
    def test_json_format(self):
        service = _service()
        _query(service)
        response = handle_request(service, {"op": "metrics"})
        assert response["format"] == "json"
        assert response["metrics"]["counters"]["serve.requests"] == 1

    def test_prometheus_format(self):
        service = _service()
        _query(service)
        response = handle_request(service, {"op": "metrics", "format": "prometheus"})
        assert response["content_type"].startswith("text/plain")
        assert "repro_serve_requests_total 1" in response["body"]
        assert 'repro_serve_latency_s_bucket{le="+Inf"}' in response["body"]

    def test_unknown_format_rejected(self):
        response = handle_request(_service(), {"op": "metrics", "format": "xml"})
        assert response["ok"] is False


class TestOverLines:
    def test_all_verbs_round_trip_as_json_lines(self):
        service = _service()
        requests = [
            {"op": "query", "dataset": "qws"},
            {"op": "stats"},
            {"op": "health"},
            {"op": "slo"},
            {"op": "events", "n": 10},
            {"op": "metrics", "format": "prometheus"},
            {"op": "shutdown"},
        ]
        out = io.StringIO()
        ended = serve_lines(
            service, (json.dumps(r) for r in requests), out
        )
        assert ended is True
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert all(r["ok"] for r in responses)
        stats, health, slo, events, metrics = responses[1:6]
        assert stats["counters"]["serve.requests"] == 1
        assert health["status"] == "healthy"
        assert slo["state"] == "ok"
        assert events["count"] >= 1
        assert "repro_serve_requests_total" in metrics["body"]
