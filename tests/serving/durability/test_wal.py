"""WAL framing: roundtrips, the torn-tail rule, fsync policies, seqs.

The file format invariant under test: everything up to the last
verifiable frame is trusted, everything after is discarded — whether the
tail was cut mid-header, mid-payload, or flipped by bit rot.
"""

import json
import os
import struct
import zlib

import pytest

from repro.observability.metrics import get_metrics
from repro.serving.durability import WalScan, WriteAheadLog, read_wal
from repro.serving.durability.wal import HEADER, MAX_RECORD_BYTES, encode_record


def wal_path(tmp_path):
    return str(tmp_path / "wal.log")


class TestReadWal:
    def test_missing_file_is_empty_untorn(self, tmp_path):
        scan = read_wal(wal_path(tmp_path))
        assert scan == WalScan([], 0, False)

    def test_roundtrip_assigns_monotone_seqs(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync="never") as wal:
            for i in range(5):
                assert wal.append_record({"op": "insert", "row": [i]}) == i
        scan = read_wal(path)
        assert not scan.torn
        assert [r.seq for r in scan.records] == list(range(5))
        assert [r.payload["row"] for r in scan.records] == [[i] for i in range(5)]
        assert scan.valid_bytes == os.path.getsize(path)

    @pytest.mark.parametrize("cut", [1, HEADER.size - 1, HEADER.size + 3])
    def test_torn_tail_stops_before_partial_frame(self, tmp_path, cut):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append_record({"op": "insert", "row": [0.5]})
        # A second frame torn `cut` bytes in — crash mid-append.
        with open(path, "ab") as fh:
            fh.write(encode_record({"op": "remove", "id": 0, "seq": 1})[:cut])
        scan = read_wal(path)
        assert scan.torn
        assert [r.seq for r in scan.records] == [0]
        assert scan.valid_bytes < os.path.getsize(path)

    def test_crc_corruption_stops_scan(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append_record({"op": "insert", "row": [1.0]})
            wal.append_record({"op": "insert", "row": [2.0]})
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF  # flip one payload byte of the final frame
        open(path, "wb").write(bytes(blob))
        scan = read_wal(path)
        assert scan.torn
        assert [r.seq for r in scan.records] == [0]

    def test_overlong_length_field_rejected(self, tmp_path):
        path = wal_path(tmp_path)
        body = json.dumps({"seq": 0}).encode()
        with open(path, "wb") as fh:
            fh.write(HEADER.pack(MAX_RECORD_BYTES + 1, zlib.crc32(body)) + body)
        scan = read_wal(path)
        assert scan.torn and scan.records == []

    def test_non_object_payload_rejected(self, tmp_path):
        path = wal_path(tmp_path)
        body = json.dumps([1, 2, 3]).encode()
        with open(path, "wb") as fh:
            fh.write(HEADER.pack(len(body), zlib.crc32(body)) + body)
        scan = read_wal(path)
        assert scan.torn and scan.records == []


class TestWriteAheadLog:
    def test_reopen_trims_torn_tail_and_continues_seq(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append_record({"op": "insert", "row": [1.0]})
            wal.append_record({"op": "insert", "row": [2.0]})
        with open(path, "ab") as fh:
            fh.write(b"\x00\x01\x02")  # torn header fragment
        with WriteAheadLog(path, fsync="never") as wal:
            # The torn bytes are physically gone before the next append.
            assert wal.next_seq == 2
            wal.append_record({"op": "insert", "row": [3.0]})
        scan = read_wal(path)
        assert not scan.torn
        assert [r.seq for r in scan.records] == [0, 1, 2]

    def test_truncate_resets_file_not_seq(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync="never") as wal:
            for _ in range(3):
                wal.append_record({"op": "insert", "row": [0.0]})
            wal.truncate()
            assert wal.size_bytes == 0
            assert wal.append_record({"op": "insert", "row": [9.0]}) == 3
        scan = read_wal(path)
        assert [r.seq for r in scan.records] == [3]

    def test_fsync_always_syncs_per_append(self, tmp_path):
        with WriteAheadLog(wal_path(tmp_path), fsync="always") as wal:
            before = get_metrics().counter("wal.syncs").value
            wal.append_record({"op": "insert", "row": [0.0]})
            wal.append_record({"op": "insert", "row": [1.0]})
            assert get_metrics().counter("wal.syncs").value == before + 2

    def test_fsync_interval_batches_syncs(self, tmp_path):
        with WriteAheadLog(
            wal_path(tmp_path), fsync="interval", fsync_interval=4
        ) as wal:
            before = get_metrics().counter("wal.syncs").value
            for _ in range(8):
                wal.append_record({"op": "insert", "row": [0.0]})
            assert get_metrics().counter("wal.syncs").value == before + 2

    def test_fsync_never_still_readable_after_close(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append_record({"op": "insert", "row": [0.0]})
        assert len(read_wal(path).records) == 1

    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(wal_path(tmp_path), fsync="sometimes")
        with pytest.raises(ValueError, match="fsync_interval"):
            WriteAheadLog(wal_path(tmp_path), fsync="interval", fsync_interval=0)

    def test_closed_log_refuses_writes(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), fsync="never")
        wal.close()
        with pytest.raises(ValueError, match="closed"):
            wal.append_record({"op": "insert", "row": [0.0]})
        with pytest.raises(ValueError, match="closed"):
            wal.truncate()
