"""Property-based chaos: arbitrary recoverable plans never change answers.

Hypothesis generates fault plans (and backoff policies) instead of a human
curating them; when a generated plan breaks parity, shrinking reports the
minimal rule set that does it.  Plans are constrained to be *recoverable by
construction* — total possible injections per task stay below the retry
budget — so any non-parity is an engine bug, not an impossible plan.
"""

from hypothesis import given, settings, strategies as st

from repro.mapreduce import (
    FaultPlan,
    FaultRule,
    Job,
    JobConf,
    Mapper,
    Reducer,
    RetryPolicy,
    Runner,
)

#: Per-test budget: every rule may inject at most twice per task, with at
#: most two rules, so 5 attempts (1 + max_retries) always suffice.
MAX_TIMES = 2
MAX_RULES = 2
POLICY = RetryPolicy(max_retries=4)


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


WORDS = [(None, "a b a"), (None, "b b c"), (None, "c a d")]
EXPECTED = {"a": 3, "b": 3, "c": 2, "d": 1}


def _wordcount_job():
    return Job(
        name="wordcount",
        mapper=TokenMapper,
        reducer=SumReducer,
        conf=JobConf(num_reducers=2, num_map_tasks=3),
    )


#: Only bounded, fast fault kinds: hang would need wall-clock timeouts and
#: poison is unrecoverable by design (both are covered deterministically in
#: the differential and runner suites).
rule_strategy = st.builds(
    FaultRule,
    fault=st.sampled_from(["crash", "slow"]),
    kind=st.sampled_from([None, "map", "reduce"]),
    index=st.sampled_from([None, 0, 1]),
    times=st.integers(min_value=1, max_value=MAX_TIMES),
    probability=st.floats(min_value=0.25, max_value=1.0),
    slow_s=st.just(0.0005),
)

plan_strategy = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**16),
    rules=st.lists(rule_strategy, max_size=MAX_RULES).map(tuple),
)


class TestRandomPlansPreserveTheAnswer:
    @settings(max_examples=25, deadline=None)
    @given(plan=plan_strategy)
    def test_wordcount_parity_under_any_recoverable_plan(self, plan):
        with Runner("serial", retry_policy=POLICY, fault_plan=plan) as runner:
            result = runner.run(_wordcount_job(), records=WORDS)
        assert dict(result.output_pairs()) == EXPECTED
        assert not result.partial
        assert result.lost_partitions == []

    @settings(max_examples=10, deadline=None)
    @given(plan=plan_strategy)
    def test_two_runs_of_one_plan_spend_identical_retries(self, plan):
        def retries():
            with Runner(
                "serial", retry_policy=POLICY, fault_plan=plan
            ) as runner:
                result = runner.run(_wordcount_job(), records=WORDS)
            return result.counters.value("framework", "task_retries")

        assert retries() == retries()


class TestBackoffProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        base=st.floats(min_value=0.0, max_value=10.0),
        factor=st.floats(min_value=1.0, max_value=4.0),
        cap=st.floats(min_value=0.1, max_value=60.0),
        attempts=st.integers(min_value=2, max_value=12),
    )
    def test_pre_jitter_backoff_is_monotone_and_capped(
        self, base, factor, cap, attempts
    ):
        policy = RetryPolicy(
            max_retries=attempts,
            backoff_base_s=base,
            backoff_factor=factor,
            backoff_max_s=cap,
        )
        curve = [policy.pre_jitter_backoff_s(a) for a in range(2, attempts + 1)]
        assert all(0.0 <= v <= cap for v in curve)
        assert all(a <= b for a, b in zip(curve, curve[1:]))

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        jitter=st.floats(min_value=0.0, max_value=1.0),
        attempt=st.integers(min_value=2, max_value=8),
        task=st.sampled_from(["map-0", "map-7", "reduce-3"]),
    )
    def test_jittered_backoff_is_banded_and_deterministic(
        self, seed, jitter, attempt, task
    ):
        policy = RetryPolicy(
            max_retries=8,
            backoff_base_s=1.0,
            jitter=jitter,
            seed=seed,
        )
        value = policy.backoff_s(task, attempt)
        base = policy.pre_jitter_backoff_s(attempt)
        assert base * (1 - jitter) <= value <= base * (1 + jitter)
        assert value == policy.backoff_s(task, attempt)
