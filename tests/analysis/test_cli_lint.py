"""`repro lint` CLI: formats, exit codes, rule listing, baselines."""

import json

from repro.cli import main

from tests.analysis.conftest import fixture_path


class TestLintCli:
    def test_clean_path_exits_zero(self, capsys):
        code = main(["lint", fixture_path("udf_pure.py")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out

    def test_findings_exit_one_text_format(self, capsys):
        code = main(["lint", fixture_path("except_swallow.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "exception-hygiene" in out
        assert "except_swallow.py:" in out

    def test_json_format_is_machine_readable(self, capsys):
        code = main(
            ["lint", fixture_path("except_swallow.py"), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["summary"]["errors"] == len(payload["findings"])
        finding = payload["findings"][0]
        assert finding["rule"] == "exception-hygiene"
        assert finding["severity"] == "error"
        assert finding["path"].endswith("except_swallow.py")
        assert finding["line"] > 0
        assert finding["fingerprint"]

    def test_rules_filter(self, capsys):
        code = main(
            [
                "lint",
                fixture_path("except_swallow.py"),
                "--rules",
                "udf-purity,pickle-safety",
            ]
        )
        capsys.readouterr()
        assert code == 0  # swallows are exception-hygiene findings

    def test_unknown_rule_is_usage_error(self, capsys):
        code = main(["lint", fixture_path("udf_pure.py"), "--rules", "nope"])
        capsys.readouterr()
        assert code == 2

    def test_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in (
            "udf-purity",
            "pickle-safety",
            "lock-discipline",
            "exception-hygiene",
        ):
            assert rule_id in out

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert (
            main(
                [
                    "lint",
                    fixture_path("except_swallow.py"),
                    "--write-baseline",
                    baseline,
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            ["lint", fixture_path("except_swallow.py"), "--baseline", baseline]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "baselined" in out
