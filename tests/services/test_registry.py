"""Tests for the UDDI-like service registry."""

import numpy as np
import pytest

from repro.core.skyline import skyline_numpy
from repro.services.qos import Polarity, QoSAttribute, QoSSchema
from repro.services.qws import QWS_SCHEMA, generate_qws
from repro.services.registry import ServiceRegistry


@pytest.fixture
def registry():
    return ServiceRegistry(QWS_SCHEMA, dims=4)


@pytest.fixture(scope="module")
def dataset():
    return generate_qws(200, seed=0)


class TestPublish:
    def test_publish_assigns_ids(self, registry, dataset):
        s1 = registry.publish("a", "p", "weather", dataset.raw[0])
        s2 = registry.publish("b", "p", "weather", dataset.raw[1])
        assert s1.service_id != s2.service_id
        assert len(registry) == 2

    def test_wrong_qos_width_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.publish("a", "p", "weather", np.ones(3))

    def test_categories_tracked(self, registry, dataset):
        registry.publish("a", "p", "weather", dataset.raw[0])
        registry.publish("b", "p", "stocks", dataset.raw[1])
        assert registry.categories() == ["stocks", "weather"]
        assert len(registry.services_in("weather")) == 1

    def test_get_service(self, registry, dataset):
        s = registry.publish("a", "prov", "weather", dataset.raw[0])
        got = registry.get(s.service_id)
        assert got.name == "a"
        assert got.provider == "prov"

    def test_unbounded_max_attribute_rejected(self):
        schema = QoSSchema(
            [
                QoSAttribute("rt", "ms", Polarity.LOWER_IS_BETTER),
                QoSAttribute("tp", "req/s", Polarity.HIGHER_IS_BETTER),  # no bound
            ]
        )
        with pytest.raises(ValueError, match="upper_bound"):
            ServiceRegistry(schema)


class TestSkylineQueries:
    def test_matches_batch_skyline(self, registry, dataset):
        for i in range(100):
            registry.publish(f"s{i}", "p", "weather", dataset.raw[i])
        expected_rows = dataset.qos_matrix(4)[:100]
        expected = set((skyline_numpy(expected_rows) + 1).tolist())  # ids are 1-based
        got = {s.service_id for s in registry.skyline("weather")}
        assert got == expected

    def test_empty_category(self, registry):
        assert registry.skyline("nope") == []

    def test_categories_isolated(self, registry, dataset):
        registry.publish("a", "p", "weather", dataset.raw[0])
        registry.publish("b", "p", "stocks", dataset.raw[1])
        assert len(registry.skyline("weather")) == 1
        assert len(registry.skyline("stocks")) == 1


class TestWithdraw:
    def test_withdraw_updates_skyline(self, registry, dataset):
        ids = [
            registry.publish(f"s{i}", "p", "w", dataset.raw[i]).service_id
            for i in range(50)
        ]
        before = {s.service_id for s in registry.skyline("w")}
        victim = next(iter(before))
        registry.withdraw(victim)
        after = {s.service_id for s in registry.skyline("w")}
        assert victim not in after
        # Survivors must equal the batch skyline over remaining services.
        remaining = [i for i in ids if i != victim]
        rows = np.vstack(
            [dataset.qos_matrix(4)[i - 1] for i in remaining]
        )
        expected = {remaining[j] for j in skyline_numpy(rows)}
        assert after == expected

    def test_withdraw_unknown_raises(self, registry):
        with pytest.raises(KeyError):
            registry.withdraw(999)

    def test_withdraw_removes_from_listing(self, registry, dataset):
        s = registry.publish("a", "p", "w", dataset.raw[0])
        registry.withdraw(s.service_id)
        assert len(registry) == 0
        assert registry.services_in("w") == []


class TestDims:
    def test_custom_dims_validated(self):
        with pytest.raises(ValueError):
            ServiceRegistry(QWS_SCHEMA, dims=11)

    def test_dims_control_skyline(self, dataset):
        # With dims=1 the skyline is just the minimum response time service(s).
        reg = ServiceRegistry(QWS_SCHEMA, dims=1)
        for i in range(50):
            reg.publish(f"s{i}", "p", "w", dataset.raw[i])
        rts = dataset.raw[:50, 0]
        sky = reg.skyline("w")
        assert {s.qos_raw[0] for s in sky} == {rts.min()}
