"""Tests for the data-space partitioners (dim / grid / angle / random)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.partitioning import (
    AngularPartitioner,
    DimensionalPartitioner,
    GridPartitioner,
    NotFittedError,
    RandomPartitioner,
    balanced_axis_counts,
    load_imbalance,
    make_partitioner,
    partition_sizes,
)

nonneg_clouds = arrays(
    np.float64,
    st.tuples(st.integers(2, 60), st.integers(2, 5)),
    elements=st.floats(0, 100, allow_nan=False),
)


class TestBaseProtocol:
    def test_assign_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DimensionalPartitioner(4).assign(np.ones((2, 2)))

    def test_fit_assign(self):
        pts = np.random.default_rng(0).random((20, 3))
        ids = DimensionalPartitioner(4).fit_assign(pts)
        assert ids.shape == (20,)

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            DimensionalPartitioner(0)

    def test_summary(self):
        p = AngularPartitioner(4).fit(np.random.default_rng(0).random((30, 3)))
        s = p.summary()
        assert s.scheme == "angle"
        assert s.num_partitions == 4

    @pytest.mark.parametrize("scheme", ["dim", "grid", "angle", "random"])
    def test_factory(self, scheme):
        p = make_partitioner(scheme, 4)
        assert p.scheme == scheme

    def test_factory_unknown(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_partitioner("voronoi", 4)

    @pytest.mark.parametrize("scheme", ["dim", "grid", "angle", "random"])
    def test_picklable_after_fit(self, scheme):
        import pickle

        pts = np.random.default_rng(1).random((50, 3)) + 0.01
        p = make_partitioner(scheme, 4).fit(pts)
        clone = pickle.loads(pickle.dumps(p))
        assert np.array_equal(clone.assign(pts), p.assign(pts))

    @pytest.mark.parametrize("scheme", ["dim", "grid", "angle", "random"])
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_ids_in_range(self, scheme, data):
        pts = data.draw(nonneg_clouds)
        p = make_partitioner(scheme, 5).fit(pts)
        ids = p.assign(pts)
        assert ids.min() >= 0
        assert ids.max() < p.num_partitions


class TestDimensional:
    def test_equal_width_slabs(self):
        pts = np.column_stack([np.array([0.0, 1.0, 5.0, 9.99, 10.0]), np.zeros(5)])
        p = DimensionalPartitioner(4).fit(pts)
        assert p.assign(pts).tolist() == [0, 0, 2, 3, 3]

    def test_custom_dim(self):
        pts = np.column_stack([np.zeros(4), np.array([0.0, 3.0, 6.0, 9.0])])
        # vmax = 9, width = 3: slabs [0,3), [3,6), [6,9].
        p = DimensionalPartitioner(3, dim=1).fit(pts)
        assert p.assign(pts).tolist() == [0, 1, 2, 2]

    def test_out_of_range_clamps(self):
        pts = np.array([[5.0, 0.0]])
        p = DimensionalPartitioner(4).fit(pts)
        assert p.assign(np.array([[100.0, 0.0]])).tolist() == [3]

    def test_all_zero_column(self):
        pts = np.zeros((10, 2))
        p = DimensionalPartitioner(4).fit(pts)
        assert (p.assign(pts) == 0).all()

    def test_dim_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DimensionalPartitioner(4, dim=5).fit(np.ones((3, 2)))

    def test_quantile_slabs_balanced(self):
        rng = np.random.default_rng(0)
        pts = np.column_stack([rng.lognormal(size=5000), rng.random(5000)])
        p = DimensionalPartitioner(8, bins="quantile").fit(pts)
        assert load_imbalance(p.assign(pts), 8) < 1.1

    def test_equal_width_imbalanced_on_lognormal(self):
        rng = np.random.default_rng(0)
        pts = np.column_stack([rng.lognormal(size=5000), rng.random(5000)])
        p = DimensionalPartitioner(8).fit(pts)
        assert load_imbalance(p.assign(pts), 8) > 2.0

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            DimensionalPartitioner(4, bins="fancy")  # type: ignore[arg-type]

    def test_subnormal_column_degenerates_to_one_slab(self):
        # vmax/Np underflows to 0.0 for subnormal maxima; regression for a
        # divide-by-zero found by hypothesis.
        pts = np.array([[5e-324, 1.0], [0.0, 2.0]])
        p = DimensionalPartitioner(4).fit(pts)
        ids = p.assign(pts)
        assert (ids == 0).all()


class TestBalancedAxisCounts:
    def test_exact_budget(self):
        assert np.prod(balanced_axis_counts(8, 3)) == 8

    def test_never_exceeds_budget(self):
        for target in range(1, 40):
            for axes in range(1, 5):
                assert np.prod(balanced_axis_counts(target, axes)) <= target

    def test_single_axis(self):
        assert balanced_axis_counts(7, 1) == [7]

    def test_zero_axes(self):
        assert balanced_axis_counts(5, 0) == []

    def test_even_spread(self):
        counts = balanced_axis_counts(16, 4)
        assert max(counts) - min(counts) <= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_axis_counts(0, 2)
        with pytest.raises(ValueError):
            balanced_axis_counts(4, -1)


class TestGrid:
    def test_2d_four_cells(self):
        pts = np.array([[1.0, 1.0], [9.0, 1.0], [1.0, 9.0], [9.0, 9.0], [10.0, 10.0]])
        p = GridPartitioner(4).fit(pts)
        ids = p.assign(pts)
        assert len(set(ids.tolist())) == 4
        assert ids[3] == ids[4]  # both in the top-right cell

    def test_explicit_cells_per_dim(self):
        pts = np.random.default_rng(0).random((50, 3))
        p = GridPartitioner(100, cells_per_dim=[2, 3, 1]).fit(pts)
        assert p.num_partitions == 6

    def test_cells_per_dim_length_mismatch(self):
        with pytest.raises(ValueError):
            GridPartitioner(4, cells_per_dim=[2, 2]).fit(np.ones((3, 3)))

    def test_cell_coordinates_round_trip(self):
        pts = np.random.default_rng(1).random((30, 3))
        p = GridPartitioner(8).fit(pts)
        for cid in range(p.num_partitions):
            coords = p.cell_coordinates(cid)
            reconstructed = sum(
                c * int(r) for c, r in zip(coords, p._radix)
            )
            assert reconstructed == cid

    def test_pruned_cells_2d(self):
        # Uniform square, 2x2 grid: the top-right cell is dominated by the
        # bottom-left cell.
        rng = np.random.default_rng(2)
        pts = rng.random((500, 2))
        p = GridPartitioner(4, cells_per_dim=[2, 2]).fit(pts)
        pruned = p.pruned_cells()
        top_right = p.assign(np.array([[0.99, 0.99]]))[0]
        assert top_right in pruned
        assert p.assign(np.array([[0.01, 0.01]]))[0] not in pruned

    def test_pruned_points_cannot_be_skyline(self):
        from repro.core.skyline import skyline_numpy

        rng = np.random.default_rng(3)
        pts = rng.random((400, 2))
        p = GridPartitioner(4, cells_per_dim=[2, 2]).fit(pts)
        mask = p.prunable_mask(pts)
        sky = set(skyline_numpy(pts).tolist())
        assert not (set(np.flatnonzero(mask).tolist()) & sky)

    def test_no_pruning_when_single_cell_axes(self):
        # counts like [2,1]: no cell can be +1 below another in ALL axes.
        pts = np.random.default_rng(4).random((100, 2))
        p = GridPartitioner(2, cells_per_dim=[2, 1]).fit(pts)
        assert p.pruned_cells().size == 0

    def test_pruning_requires_occupied_dominator(self):
        # Points only in the top-right cell: nothing occupies a dominating
        # cell, so nothing can be pruned.
        pts = np.random.default_rng(5).random((50, 2)) * 0.4 + 0.6
        p = GridPartitioner(4, cells_per_dim=[2, 2]).fit(pts)
        top_right = p.assign(np.array([[0.99, 0.99]]))[0]
        assert top_right not in p.pruned_cells()

    def test_quantile_grid_balanced(self):
        rng = np.random.default_rng(6)
        pts = np.column_stack([rng.lognormal(size=3000), rng.lognormal(size=3000)])
        eq = GridPartitioner(4, cells_per_dim=[2, 2]).fit(pts)
        q = GridPartitioner(4, cells_per_dim=[2, 2], bins="quantile").fit(pts)
        assert load_imbalance(q.assign(pts), 4) < load_imbalance(eq.assign(pts), 4)

    def test_subnormal_column_no_warning(self):
        import warnings

        pts = np.array([[5e-324, 1.0], [0.0, 2.0]])
        p = GridPartitioner(4, cells_per_dim=[2, 2]).fit(pts)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            p.assign(pts)

    def test_quantile_pruning_still_sound(self):
        from repro.core.skyline import skyline_numpy

        rng = np.random.default_rng(7)
        pts = rng.random((400, 2))
        p = GridPartitioner(9, cells_per_dim=[3, 3], bins="quantile").fit(pts)
        mask = p.prunable_mask(pts)
        sky = set(skyline_numpy(pts).tolist())
        assert not (set(np.flatnonzero(mask).tolist()) & sky)


class TestAngular:
    def test_2d_fan_matches_manual_angles(self):
        rng = np.random.default_rng(0)
        pts = rng.random((200, 2)) + 0.01
        p = AngularPartitioner(4, bins="equal-width").fit(pts)
        ids = p.assign(pts)
        angles = np.arctan2(pts[:, 1], pts[:, 0])
        expected = np.clip((angles / (np.pi / 2) * 4).astype(int), 0, 3)
        assert np.array_equal(ids, expected)

    def test_first_axis_allocation_exact_budget(self):
        pts = np.random.default_rng(1).random((100, 5))
        p = AngularPartitioner(7).fit(pts)
        assert p.num_partitions == 7

    def test_balanced_allocation_within_budget(self):
        pts = np.random.default_rng(2).random((100, 5))
        p = AngularPartitioner(8, allocation="balanced").fit(pts)
        assert p.num_partitions <= 8

    def test_explicit_allocation(self):
        pts = np.random.default_rng(3).random((100, 4))
        p = AngularPartitioner(100, allocation=[2, 3, 1]).fit(pts)
        assert p.num_partitions == 6

    def test_too_many_axis_counts_rejected(self):
        pts = np.random.default_rng(4).random((10, 3))
        with pytest.raises(ValueError):
            AngularPartitioner(4, allocation=[2, 2, 2]).fit(pts)

    def test_quantile_sectors_balanced(self):
        rng = np.random.default_rng(5)
        pts = rng.lognormal(size=(3000, 6))
        p = AngularPartitioner(8).fit(pts)
        assert load_imbalance(p.assign(pts), p.num_partitions) < 1.05

    def test_sectors_are_radial_cones(self):
        """Scaling a point radially never changes its sector — the property
        that guarantees each sector spans all quality levels."""
        rng = np.random.default_rng(6)
        pts = rng.random((100, 4)) + 0.01
        p = AngularPartitioner(8).fit(pts)
        for scale in (0.25, 3.0, 40.0):
            assert np.array_equal(p.assign(pts), p.assign(pts * scale))

    def test_negative_data_rejected(self):
        p = AngularPartitioner(4)
        with pytest.raises(ValueError):
            p.fit(np.array([[1.0, -1.0]]))

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            AngularPartitioner(4, bins="log")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            AngularPartitioner(4, allocation="middle-out")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            AngularPartitioner(4, allocation=[0, 2])

    @given(nonneg_clouds)
    @settings(max_examples=40, deadline=None)
    def test_property_every_point_assigned(self, pts):
        p = AngularPartitioner(4).fit(pts)
        ids = p.assign(pts)
        assert ids.shape == (pts.shape[0],)


class TestRandom:
    def test_deterministic_per_content(self):
        pts = np.random.default_rng(0).random((50, 3))
        p = RandomPartitioner(8, seed=1).fit(pts)
        assert np.array_equal(p.assign(pts), p.assign(pts))

    def test_order_independent(self):
        pts = np.random.default_rng(1).random((50, 3))
        p = RandomPartitioner(8, seed=1).fit(pts)
        perm = np.random.default_rng(2).permutation(50)
        assert np.array_equal(p.assign(pts)[perm], p.assign(pts[perm]))

    def test_seed_changes_assignment(self):
        pts = np.random.default_rng(3).random((100, 3))
        a = RandomPartitioner(8, seed=1).fit(pts).assign(pts)
        b = RandomPartitioner(8, seed=2).fit(pts).assign(pts)
        assert not np.array_equal(a, b)

    def test_roughly_balanced(self):
        pts = np.random.default_rng(4).random((4000, 3))
        p = RandomPartitioner(8, seed=0).fit(pts)
        assert load_imbalance(p.assign(pts), 8) < 1.3


class TestSizeHelpers:
    def test_partition_sizes(self):
        ids = np.array([0, 0, 1, 3])
        assert partition_sizes(ids, 5).tolist() == [2, 1, 0, 1, 0]

    def test_imbalance_perfect(self):
        assert load_imbalance(np.array([0, 1, 2, 3]), 4) == 1.0

    def test_imbalance_empty(self):
        assert load_imbalance(np.array([], dtype=int), 4) == 0.0

    def test_imbalance_skewed(self):
        assert load_imbalance(np.array([0, 0, 0, 1]), 2) == pytest.approx(1.5)
