"""Tests for the in-memory block filesystem."""

import pytest

from repro.mapreduce.errors import FileSystemError
from repro.mapreduce.fs import BlockFileSystem


@pytest.fixture
def fs():
    return BlockFileSystem(block_size=8)


class TestWriteRead:
    def test_round_trip(self, fs):
        fs.write("/a/b.txt", b"hello world, blocks!")
        assert fs.read("/a/b.txt") == b"hello world, blocks!"

    def test_text_round_trip(self, fs):
        fs.write_text("/t.txt", "héllo\nwörld")
        assert fs.read_text("/t.txt") == "héllo\nwörld"

    def test_empty_file(self, fs):
        fs.write("/empty", b"")
        assert fs.read("/empty") == b""
        assert fs.status("/empty").size == 0
        assert fs.status("/empty").num_blocks == 1

    def test_overwrite_requires_flag(self, fs):
        fs.write("/x", b"1")
        with pytest.raises(FileSystemError):
            fs.write("/x", b"2")
        fs.write("/x", b"2", overwrite=True)
        assert fs.read("/x") == b"2"

    def test_write_str_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.write("/x", "not bytes")

    def test_append(self, fs):
        fs.write("/x", b"1234")
        fs.append("/x", b"5678abcd")
        assert fs.read("/x") == b"12345678abcd"
        assert fs.status("/x").num_blocks == 2

    def test_append_to_missing_creates(self, fs):
        fs.append("/new", b"data")
        assert fs.read("/new") == b"data"

    def test_missing_file_raises(self, fs):
        with pytest.raises(FileSystemError):
            fs.read("/nope")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.write("rel/path", b"x")

    def test_root_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.write("/", b"x")

    def test_path_normalisation(self, fs):
        fs.write("/a//b/../c.txt", b"x")
        assert fs.exists("/a/c.txt")


class TestBlocks:
    def test_block_split(self, fs):
        fs.write("/f", b"x" * 20)  # block_size=8 -> 8+8+4
        st = fs.status("/f")
        assert st.num_blocks == 3
        locs = fs.block_locations("/f")
        assert [(l.offset, l.length) for l in locs] == [(0, 8), (8, 8), (16, 4)]

    def test_exact_multiple(self, fs):
        fs.write("/f", b"x" * 16)
        assert fs.status("/f").num_blocks == 2

    def test_read_range(self, fs):
        fs.write("/f", bytes(range(20)))
        assert fs.read_range("/f", 5, 7) == bytes(range(5, 12))

    def test_read_range_across_blocks(self, fs):
        fs.write("/f", bytes(range(24)))
        assert fs.read_range("/f", 6, 12) == bytes(range(6, 18))

    def test_read_range_clamps_at_eof(self, fs):
        fs.write("/f", b"abc")
        assert fs.read_range("/f", 1, 100) == b"bc"

    def test_read_range_negative_rejected(self, fs):
        fs.write("/f", b"abc")
        with pytest.raises(FileSystemError):
            fs.read_range("/f", -1, 2)

    def test_bad_block_size(self):
        with pytest.raises(FileSystemError):
            BlockFileSystem(block_size=0)


class TestListingAndMutation:
    def test_ls_prefix(self, fs):
        fs.write("/a/1", b"")
        fs.write("/a/2", b"")
        fs.write("/b/3", b"")
        assert fs.ls("/a") == ["/a/1", "/a/2"]
        assert fs.ls() == ["/a/1", "/a/2", "/b/3"]

    def test_ls_does_not_match_sibling_prefix(self, fs):
        fs.write("/ab", b"")
        fs.write("/a/x", b"")
        assert fs.ls("/a") == ["/a/x"]

    def test_delete(self, fs):
        fs.write("/x", b"1")
        fs.delete("/x")
        assert not fs.exists("/x")
        with pytest.raises(FileSystemError):
            fs.delete("/x")

    def test_delete_prefix(self, fs):
        fs.write("/out/p0", b"")
        fs.write("/out/p1", b"")
        fs.write("/keep", b"")
        assert fs.delete_prefix("/out") == 2
        assert fs.ls() == ["/keep"]

    def test_rename(self, fs):
        fs.write("/src", b"data")
        fs.rename("/src", "/dst")
        assert fs.read("/dst") == b"data"
        assert not fs.exists("/src")

    def test_rename_missing_raises(self, fs):
        with pytest.raises(FileSystemError):
            fs.rename("/nope", "/dst")

    def test_rename_onto_existing_raises(self, fs):
        fs.write("/a", b"1")
        fs.write("/b", b"2")
        with pytest.raises(FileSystemError):
            fs.rename("/a", "/b")

    def test_exists_invalid_path_false(self, fs):
        assert fs.exists("not-absolute") is False


class TestLines:
    def test_iter_lines(self, fs):
        fs.write_text("/f", "a\nb\nc")
        assert list(fs.iter_lines("/f")) == ["a", "b", "c"]

    def test_iter_lines_trailing_newline(self, fs):
        fs.write_text("/f", "a\nb\n")
        assert list(fs.iter_lines("/f")) == ["a", "b", ""]

    def test_iter_lines_empty(self, fs):
        fs.write_text("/f", "")
        assert list(fs.iter_lines("/f")) == []
