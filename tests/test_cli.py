"""Tests for the command-line front end."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_formats_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["theory", "--markdown", "--csv"])

    @pytest.mark.parametrize(
        "name",
        [
            "fig5a",
            "fig5b",
            "fig6",
            "fig7a",
            "fig7b",
            "headline",
            "theory",
            "ablations",
            "stragglers",
            "all",
        ],
    )
    def test_known_experiments_parse(self, name):
        args = build_parser().parse_args([name])
        assert args.experiment == name


class TestMain:
    def test_theory_runs(self, capsys):
        assert main(["theory", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "dominance ability" in out
        assert "True" in out

    def test_quick_fig5a(self, capsys):
        assert main(["fig5a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out
        assert "MR-Angle" in out

    def test_markdown_output(self, capsys):
        assert main(["theory", "--quick", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "|---" in out

    def test_csv_output(self, capsys):
        assert main(["theory", "--quick", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "x,y,D_angle_eq3" in out


class TestOutputFile:
    def test_output_file_appended(self, tmp_path, capsys):
        target = tmp_path / "tables.txt"
        assert main(["theory", "--quick", "--output", str(target)]) == 0
        assert main(["theory", "--quick", "--output", str(target)]) == 0
        content = target.read_text()
        assert content.count("dominance ability") == 2

    def test_stragglers_quick(self, capsys):
        assert main(["stragglers", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "speculative" in out


class TestModuleEntry:
    def test_python_dash_m(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "theory", "--quick", "--csv"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0
        assert "D_angle_eq3" in proc.stdout
