"""Open-loop load generator + crash/recovery scenario for the serving layer.

``repro loadtest`` (and the ``loadtest`` section of ``repro bench``)
drives a *live* ``repro serve --tcp`` process the way a client
population would: requests are released on a fixed arrival schedule
(``start + i / qps``) regardless of how fast earlier ones complete —
the open-loop discipline, which unlike closed-loop benchmarking does
not let a slow server throttle its own offered load, so queueing and
shedding behaviour show up in the tail percentiles instead of hiding
in a depressed request rate.

The generated mix covers all four query kinds plus insert/remove
mutations, deterministically derived per request index from
:func:`repro.mapreduce.faults.stable_rng` — two runs with the same seed
offer byte-identical request streams.

:func:`run_scenario` wraps the generator in the durability story the
BENCH record needs: spawn a server with ``--data-dir``, load it, run
the open-loop mix, ``SIGKILL`` it mid-traffic, restart it from the same
directory, and measure **recovery-time-to-first-answer** plus id-for-id
parity of the recovered answers against the pre-crash ones.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.mapreduce.faults import stable_rng
from repro.serving.client import ServingClient, ServingConnectionError

__all__ = [
    "LoadTestConfig",
    "percentile_ms",
    "run_loadtest",
    "run_scenario",
    "spawn_tcp_server",
]

#: Weight of each op in the generated mix; mutations ride alongside.
DEFAULT_MIX: Dict[str, float] = {
    "skyline": 0.55,
    "skyband": 0.2,
    "constrained": 0.15,
    "subspace": 0.1,
}


@dataclass
class LoadTestConfig:
    """Knobs of one open-loop run."""

    dataset: str = "loadtest"
    qps: float = 200.0
    duration_s: float = 2.0
    workers: int = 8
    mutation_fraction: float = 0.1
    mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    n_points: int = 400
    dims: int = 3
    seed: int = 0
    request_timeout_s: float = 10.0

    def validate(self) -> None:
        if self.qps <= 0:
            raise ValueError(f"qps must be > 0, got {self.qps}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0.0 <= self.mutation_fraction < 1.0:
            raise ValueError(
                f"mutation_fraction must be in [0, 1), got {self.mutation_fraction}"
            )
        if self.n_points < 1 or self.dims < 2:
            raise ValueError(
                f"need n_points >= 1 and dims >= 2, got "
                f"{self.n_points} x {self.dims}"
            )
        unknown = set(self.mix) - set(DEFAULT_MIX)
        if unknown:
            raise ValueError(f"unknown query kinds in mix: {sorted(unknown)}")
        if not self.mix or sum(self.mix.values()) <= 0:
            raise ValueError("mix must have positive total weight")

    def points(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.random((self.n_points, self.dims))


def _build_request(index: int, config: LoadTestConfig) -> Dict[str, Any]:
    """The deterministic request for arrival ``index``."""
    rng = stable_rng(config.seed, "loadtest", index)
    if rng.random() < config.mutation_fraction:
        if rng.random() < 0.5:
            point = [rng.random() for _ in range(config.dims)]
            return {"op": "insert", "dataset": config.dataset, "point": point}
        # Removes target the initial id range; an id already removed by
        # an earlier arrival answers with a KeyError-shaped error, which
        # the generator counts as answered (the server is not wrong).
        return {
            "op": "remove",
            "dataset": config.dataset,
            "id": rng.randrange(config.n_points),
        }
    kinds, weights = zip(*sorted(config.mix.items()))
    kind = rng.choices(kinds, weights=weights, k=1)[0]
    request: Dict[str, Any] = {
        "op": "query",
        "dataset": config.dataset,
        "kind": kind,
    }
    if kind == "skyband":
        request["k"] = rng.randrange(1, 4)
    elif kind == "constrained":
        lo = [round(rng.random() * 0.3, 3) for _ in range(config.dims)]
        request["lower"] = lo
        request["upper"] = [round(v + 0.5, 3) for v in lo]
    elif kind == "subspace":
        width = rng.randrange(2, config.dims + 1)
        request["dims"] = sorted(rng.sample(range(config.dims), width))
    return request


def percentile_ms(latencies_s: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``latencies_s``, in milliseconds."""
    if not latencies_s:
        return 0.0
    return float(np.percentile(np.asarray(latencies_s), q) * 1e3)


def run_loadtest(
    host: str, port: int, config: LoadTestConfig
) -> Dict[str, Any]:
    """Replay the open-loop mix against a live server; returns the stats.

    Arrival ``i`` is released at ``start + i / qps`` by one of
    ``config.workers`` threads (each with its own TCP connection).  A
    worker running behind schedule fires immediately but never skips —
    offered load is what the config says, which is what makes shed and
    degraded counts meaningful.
    """
    config.validate()
    total = max(1, int(config.qps * config.duration_s))
    interval = 1.0 / config.qps
    start = time.perf_counter() + 0.05  # let every worker reach its loop
    counts = {
        "sent": 0,
        "answered": 0,
        "shed": 0,
        "degraded": 0,
        "errors": 0,
        "mutations": 0,
        "cache_hits": 0,
    }
    by_kind: Dict[str, int] = {}
    latencies: List[float] = []
    merge_lock = threading.Lock()

    def worker(worker_id: int) -> None:
        local_counts = dict.fromkeys(counts, 0)
        local_kinds: Dict[str, int] = {}
        local_latencies: List[float] = []
        try:
            client = ServingClient.connect(
                host, port, timeout=config.request_timeout_s
            )
        except OSError:
            with merge_lock:
                counts["errors"] += sum(
                    1 for i in range(worker_id, total, config.workers)
                )
            return
        with client:
            for i in range(worker_id, total, config.workers):
                delay = (start + i * interval) - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                request = _build_request(i, config)
                local_counts["sent"] += 1
                if request["op"] != "query":
                    local_counts["mutations"] += 1
                else:
                    local_kinds[request["kind"]] = (
                        local_kinds.get(request["kind"], 0) + 1
                    )
                sent_at = time.perf_counter()
                try:
                    response = client.call(**request)
                except ServingConnectionError:
                    local_counts["errors"] += 1
                    break  # this connection is dead; drop its remainder
                elapsed = time.perf_counter() - sent_at
                if request["op"] == "query":
                    local_latencies.append(elapsed)
                status = response.get("status")
                if response.get("ok"):
                    local_counts["answered"] += 1
                    if response.get("degraded"):
                        local_counts["degraded"] += 1
                    if response.get("cache_hit"):
                        local_counts["cache_hits"] += 1
                elif status == "rejected":
                    local_counts["shed"] += 1
                elif request["op"] == "remove":
                    # Double-remove of an id an earlier arrival already
                    # dropped: the server is right, not failing.
                    local_counts["answered"] += 1
                else:
                    local_counts["errors"] += 1
        with merge_lock:
            for key, value in local_counts.items():
                counts[key] += value
            for kind, value in local_kinds.items():
                by_kind[kind] = by_kind.get(kind, 0) + value
            latencies.extend(local_latencies)

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(config.workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(time.perf_counter() - start, 1e-9)
    return {
        "target_qps": config.qps,
        "achieved_qps": round(counts["sent"] / elapsed, 3),
        "duration_s": round(elapsed, 6),
        "requests": {**counts, "by_kind": dict(sorted(by_kind.items()))},
        "latency_ms": {
            "p50": round(percentile_ms(latencies, 50), 3),
            "p95": round(percentile_ms(latencies, 95), 3),
            "p99": round(percentile_ms(latencies, 99), 3),
        },
    }


# -- live-server scaffolding ----------------------------------------------------

_BOUND_RE = re.compile(r"serving on ([\d.]+):(\d+)")


def spawn_tcp_server(
    *serve_args: str, python: str = sys.executable, startup_timeout_s: float = 30.0
) -> Tuple[subprocess.Popen, str, int]:
    """Spawn ``repro serve --tcp 127.0.0.1:0 ...``; returns (proc, host, port).

    The bound address is parsed from the server's stderr banner; the
    stderr pipe is then drained by a daemon thread so the child can
    never block on a full pipe buffer.
    """
    proc = subprocess.Popen(
        [python, "-m", "repro.cli", "serve", "--tcp", "127.0.0.1:0", *serve_args],
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert proc.stderr is not None
    deadline = time.monotonic() + startup_timeout_s
    for line in proc.stderr:
        match = _BOUND_RE.search(line)
        if match:
            threading.Thread(
                target=_drain, args=(proc.stderr,), daemon=True
            ).start()
            return proc, match.group(1), int(match.group(2))
        if time.monotonic() > deadline:
            break
    proc.kill()
    raise RuntimeError("server did not report a bound address")


def _drain(stream: Any) -> None:
    for _ in stream:
        pass


def _await_first_answer(
    host: str, port: int, dataset: str, *, timeout_s: float = 30.0
) -> Tuple[float, Dict[str, Any]]:
    """Seconds until the server answers a skyline query ok, + the answer."""
    started = time.perf_counter()
    deadline = started + timeout_s
    last_error: Exception | None = None
    while time.perf_counter() < deadline:
        try:
            with ServingClient.connect(host, port, timeout=5.0) as client:
                response = client.query(dataset)
                if response.get("ok"):
                    return time.perf_counter() - started, response
        except (OSError, ServingConnectionError) as exc:
            last_error = exc
        time.sleep(0.02)
    raise RuntimeError(f"no answer from recovered server: {last_error}")


def run_scenario(
    config: LoadTestConfig,
    data_dir: str,
    *,
    serve_args: Sequence[str] = (),
    fsync: str = "always",
    snapshot_every: int = 64,
) -> Dict[str, Any]:
    """The full durability scenario: load, traffic, SIGKILL, recover.

    1. spawn a server persisting under ``data_dir``; register the
       dataset;
    2. run the open-loop mix against it;
    3. record the current answers for every query kind, then ``SIGKILL``
       the process (no shutdown handshake, no flush beyond what the
       fsync policy already guaranteed);
    4. restart from the same directory, measure time-to-first-answer,
       and compare every query kind's ids against step 3 — the id-for-id
       recovery parity check, end to end over the real CLI.
    """
    config.validate()
    durability_args = [
        "--data-dir", data_dir, "--fsync", fsync,
        "--snapshot-every", str(snapshot_every),
    ]
    proc, host, port = spawn_tcp_server(*durability_args, *serve_args)
    parity_specs: List[Dict[str, Any]] = [
        {"kind": "skyline"},
        {"kind": "skyband", "k": 2},
        {
            "kind": "constrained",
            "lower": [0.0] * config.dims,
            "upper": [0.8] * config.dims,
        },
        {"kind": "subspace", "dims": [0, 1]},
    ]
    try:
        with ServingClient.connect(host, port, timeout=10.0) as client:
            response = client.register(config.dataset, config.points())
            if not response.get("ok"):
                raise RuntimeError(f"register failed: {response}")
        stats = run_loadtest(host, port, config)
        pre_crash: List[Dict[str, Any]] = []
        with ServingClient.connect(host, port, timeout=10.0) as client:
            for spec in parity_specs:
                answer = client.query(config.dataset, **spec)
                if not answer.get("ok"):
                    raise RuntimeError(f"pre-crash query failed: {answer}")
                pre_crash.append(answer)
    finally:
        proc.kill()  # SIGKILL: the crash under test (also the error path)
        proc.wait(timeout=30)

    proc2, host2, port2 = spawn_tcp_server(*durability_args, *serve_args)
    try:
        recovery_time_s, _ = _await_first_answer(host2, port2, config.dataset)
        parity = True
        recovered_generation = None
        wal_metrics: Dict[str, Any] = {}
        with ServingClient.connect(host2, port2, timeout=10.0) as client:
            for spec, before in zip(parity_specs, pre_crash):
                after = client.query(config.dataset, **spec)
                if (
                    not after.get("ok")
                    or after.get("ids") != before.get("ids")
                    or after.get("generation") != before.get("generation")
                ):
                    parity = False
                recovered_generation = after.get("generation")
            metrics = client.metrics().get("metrics", {})
            counters = metrics.get("counters", {})
            wal_metrics = {
                "records_replayed": counters.get("wal.records_replayed", 0),
                "appends": counters.get("wal.appends", 0),
                "checkpoints": counters.get("wal.checkpoints", 0),
            }
            client.shutdown()
        proc2.wait(timeout=30)
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait(timeout=30)

    snapshot_bytes = 0
    wal_bytes = 0
    for root, _dirs, files in os.walk(data_dir):
        for name in files:
            size = os.path.getsize(os.path.join(root, name))
            if name == "snapshot.bin":
                snapshot_bytes += size
            elif name == "wal.log":
                wal_bytes += size
    raw_points_bytes = config.n_points * config.dims * 8
    stats["recovery"] = {
        "recovery_time_s": round(recovery_time_s, 6),
        "parity": parity,
        "generation": recovered_generation,
    }
    stats["durability"] = {
        **wal_metrics,
        "snapshot_bytes": snapshot_bytes,
        "wal_bytes": wal_bytes,
        "raw_points_bytes": raw_points_bytes,
        "snapshot_to_raw_ratio": (
            round(snapshot_bytes / raw_points_bytes, 4) if raw_points_bytes else 0.0
        ),
        "fsync": fsync,
        "snapshot_every": snapshot_every,
    }
    return stats


def render(stats: Dict[str, Any]) -> str:
    """One human-readable block for the CLI (the JSON is the real output)."""
    lines = [
        f"target {stats['target_qps']} qps, achieved "
        f"{stats['achieved_qps']} qps over {stats['duration_s']}s",
        "latency p50/p95/p99: "
        f"{stats['latency_ms']['p50']} / {stats['latency_ms']['p95']} / "
        f"{stats['latency_ms']['p99']} ms",
    ]
    req = stats["requests"]
    lines.append(
        f"requests: {req['sent']} sent, {req['answered']} answered, "
        f"{req['shed']} shed, {req['degraded']} degraded, "
        f"{req['errors']} errors ({req['mutations']} mutations)"
    )
    if "recovery" in stats:
        rec = stats["recovery"]
        lines.append(
            f"recovery: first answer after {rec['recovery_time_s']}s, "
            f"id-for-id parity={'yes' if rec['parity'] else 'NO'} "
            f"(generation {rec['generation']})"
        )
    if "durability" in stats:
        dur = stats["durability"]
        lines.append(
            f"durability: {dur['records_replayed']} record(s) replayed, "
            f"snapshot {dur['snapshot_bytes']}B vs raw {dur['raw_points_bytes']}B "
            f"(ratio {dur['snapshot_to_raw_ratio']})"
        )
    return "\n".join(lines)


def dump_json(stats: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
        fh.write("\n")
