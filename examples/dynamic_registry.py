#!/usr/bin/env python
"""Dynamic service registry — §II's add/drop scenario.

"Given a new service which is added into UDDI, traditional approach has to
compute the global skyline again.  With the MapReduce approach, the new
service is first mapped into a group and added into the local skyline
computation."

This example drives the UDDI-like registry through a publish/withdraw churn
and shows that each mutation only touches one partition's local skyline
while the global skyline stays exact.

Run:  python examples/dynamic_registry.py
"""

import numpy as np

from repro.services import QWS_SCHEMA, ServiceRegistry, generate_qws

def main() -> None:
    rng = np.random.default_rng(0)
    dataset = generate_qws(2_000, seed=5)
    registry = ServiceRegistry(QWS_SCHEMA, dims=4)

    # Phase 1: providers publish an initial catalogue.
    providers = ["acme", "globex", "initech", "umbrella"]
    ids = []
    for i in range(500):
        svc = registry.publish(
            name=f"weather-{i}",
            provider=providers[i % len(providers)],
            category="weather",
            qos_raw=dataset.raw[i],
        )
        ids.append(svc.service_id)
    sky = registry.skyline("weather")
    print(f"after 500 publishes: {len(sky)} skyline services")

    # Phase 2: churn — new services arrive, old ones are withdrawn.
    for step in range(1, 6):
        for _ in range(50):  # 50 new arrivals
            i = len(ids)
            svc = registry.publish(
                f"weather-{i}", rng.choice(providers), "weather",
                dataset.raw[500 + i % 1_500],
            )
            ids.append(svc.service_id)
        live = [i for i in ids if i in {s.service_id for s in registry}]
        for victim in rng.choice(live, size=25, replace=False):  # 25 churn out
            registry.withdraw(int(victim))
        sky = registry.skyline("weather")
        print(f"churn round {step}: {len(registry)} live services, "
              f"{len(sky)} on the skyline")

    # The incremental skyline must match a from-scratch batch computation.
    from repro.core import skyline_numpy

    live_services = sorted(registry, key=lambda s: s.service_id)
    matrix = QWS_SCHEMA.subset(4).to_minimization(
        np.vstack([s.qos_raw[:4] for s in live_services])
    )
    batch = {live_services[j].service_id for j in skyline_numpy(matrix)}
    incremental = {s.service_id for s in registry.skyline("weather")}
    assert batch == incremental, "incremental result diverged from batch!"
    print("\nincremental skyline == batch recomputation: OK")

if __name__ == "__main__":
    main()
