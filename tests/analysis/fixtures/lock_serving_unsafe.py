"""Violating fixture for lock-discipline over serving-layer shared state.

Mirrors the serving subsystem's shapes — a generation-counted store, a
result cache, and an admission queue counter — with bare writes that slip
out from under the lock.
"""

import threading


class LeakyStore:
    """Generation-counted store whose mutations dodge the lock."""

    def __init__(self):
        self._lock = threading.RLock()
        self._generation = 0
        self._members = {}

    def insert(self, point_id, row):
        with self._lock:
            self._members[point_id] = row
            self._generation += 1

    def fast_remove(self, point_id):
        self._members.pop(point_id, None)  # VIOLATION: lock-discipline
        self._generation += 1  # VIOLATION: lock-discipline


class LeakyCache:
    """Result cache that resets its entry map without the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, ids):
        with self._lock:
            self._entries[key] = ids

    def clear(self):
        self._entries = {}  # VIOLATION: lock-discipline


class LeakyQueue:
    """Admission bookkeeping with an unguarded depth counter."""

    def __init__(self):
        self._lock = threading.Lock()
        self._queued = 0

    def enter(self):
        with self._lock:
            self._queued += 1

    def leave(self):
        self._queued -= 1  # VIOLATION: lock-discipline
