"""Online skyline query serving — the §II scenario made long-running.

The paper motivates MapReduce skyline processing with interactive
QoS-based service selection over a live UDDI registry.  The batch engine
(:mod:`repro.core.mr_skyline`) answers one query per pipeline run; this
package keeps the per-partition skyline state *resident* and serves many
concurrent queries against it:

* :class:`~repro.serving.store.SkylineStore` — one
  :class:`~repro.core.incremental.IncrementalSkyline` per registered
  dataset behind a generation counter; mutations touch one partition and
  bump the generation.  Large cold loads seed through the pipelined
  MapReduce job instead of serial inserts.
* :class:`~repro.serving.cache.ResultCache` — versioned result cache
  keyed ``(dataset, kind, params, generation)``; mutation invalidates by
  construction, and stale generations back the degraded answer path.
* :class:`~repro.serving.service.SkylineService` — the request plane:
  admission control with bounded queueing and load shedding, request
  coalescing (identical in-flight queries share one computation),
  per-query deadlines, four query kinds (skyline, k-skyband, constrained,
  subspace), full serve-path observability.
* :mod:`~repro.serving.protocol` / :mod:`~repro.serving.server` /
  :mod:`~repro.serving.client` — the ``repro serve`` JSON-lines front end
  (stdio or TCP) and the client helper used by tests and CI; the
  read-only ``stats`` / ``health`` / ``slo`` / ``events`` / ``metrics``
  verbs are the live telemetry plane.
* :mod:`~repro.serving.top` — the ``repro top`` terminal dashboard that
  polls those verbs against a running server.
* :mod:`~repro.serving.cluster` — sharded multi-node serving: a
  coordinator fans queries out to shard servers with broadcast filter
  points, merges candidate sets exactly, and degrades (never fails) on
  shard loss.  ``repro serve --cluster N`` / ``repro coordinator``.

See ``docs/serving.md``, ``docs/cluster.md`` and ``docs/observability.md``.
"""

from repro.serving.cache import ResultCache
from repro.serving.client import ServingClient, ServingConnectionError
from repro.serving.cluster import (
    ClusterConfig,
    ClusterCoordinator,
    ClusterResponse,
    ClusterUnavailableError,
    LocalCluster,
    ShardLostError,
    ShardMap,
)
from repro.serving.queries import QUERY_KINDS, QuerySpec, candidate_prune_mask, evaluate
from repro.serving.service import (
    QueryResponse,
    ServeConfig,
    ServiceOverloadedError,
    SkylineService,
    UnknownDatasetError,
)
from repro.serving.store import SkylineStore, StoreSnapshot
from repro.serving.top import render_frame, run_top

__all__ = [
    "QUERY_KINDS",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterResponse",
    "ClusterUnavailableError",
    "LocalCluster",
    "QueryResponse",
    "QuerySpec",
    "ResultCache",
    "ServeConfig",
    "ServiceOverloadedError",
    "ServingClient",
    "ServingConnectionError",
    "ShardLostError",
    "ShardMap",
    "SkylineService",
    "SkylineStore",
    "StoreSnapshot",
    "UnknownDatasetError",
    "candidate_prune_mask",
    "evaluate",
    "render_frame",
    "run_top",
]
