"""The reproduction gate: codified shape claims, checked mechanically.

EXPERIMENTS.md narrates paper-vs-measured; this module makes the key claims
*executable*.  Each :class:`ShapeCheck` re-derives one qualitative claim
from a freshly generated figure table and reports pass/fail, so a code
change that silently breaks the reproduction (say, a partitioner regression
that flips the Figure-5 ordering) is caught by ``python -m repro.cli
verify`` or the ``benchmarks/`` suite rather than by a human rereading
tables.

Checks intentionally assert *shapes* — orderings, monotonicity, factor
floors — never absolute seconds (see DESIGN.md §5 on calibration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.bench.experiments import figure5, figure6, figure7, theory
from repro.bench.harness import DEFAULT_CLUSTER, DatasetCache, default_cache
from repro.bench.reporting import Table
from repro.mapreduce.cluster import ClusterSpec

__all__ = ["CheckResult", "ShapeCheck", "reproduction_checks", "verify_all"]


@dataclass(frozen=True, slots=True)
class CheckResult:
    """Outcome of one shape check."""

    name: str
    passed: bool
    detail: str

    def __bool__(self) -> bool:  # allows all(results)
        return self.passed


@dataclass(frozen=True, slots=True)
class ShapeCheck:
    """One executable claim over a figure table."""

    name: str
    claim: str  # the paper-shape being asserted, for reports
    predicate: Callable[[Table], str]  # returns "" on pass, else failure text
    table_fn: Callable[[], Table]

    def run(self) -> CheckResult:
        table = self.table_fn()
        failure = self.predicate(table)
        return CheckResult(
            name=self.name,
            passed=not failure,
            detail=failure or self.claim,
        )


def _angle_fastest(table: Table) -> str:
    angle = table.column("MR-Angle")
    for other in ("MR-Dim", "MR-Grid"):
        for d, a, o in zip(table.column("dimension"), angle, table.column(other)):
            if a > o * 1.02:
                return f"MR-Angle slower than {other} at d={d}: {a:.2f} vs {o:.2f}"
    return ""


def _angle_gap_grows(table: Table) -> str:
    angle = table.column("MR-Angle")
    dim = table.column("MR-Dim")
    first_ratio = dim[0] / angle[0]
    last_ratio = dim[-1] / angle[-1]
    if last_ratio < first_ratio:
        return (
            f"MR-Dim/MR-Angle ratio shrank with dimension: "
            f"{first_ratio:.2f} -> {last_ratio:.2f}"
        )
    if last_ratio < 1.5:
        return f"top-dimension speedup only {last_ratio:.2f}x (< 1.5x floor)"
    return ""


def _fig6_declines_and_saturates(table: Table) -> str:
    totals = table.column("total_s")
    if totals[0] <= totals[-1]:
        return f"no total speedup: {totals[0]:.1f} -> {totals[-1]:.1f}"
    mid = len(totals) // 2
    head_gain = totals[0] - totals[mid]
    tail_gain = totals[mid] - totals[-1]
    if head_gain < tail_gain:
        return (
            f"curve does not saturate: head gain {head_gain:.1f} "
            f"< tail gain {tail_gain:.1f}"
        )
    return ""


def _fig7_ordering_at_top_dim(table: Table) -> str:
    angle = table.column("MR-Angle")[-1]
    grid = table.column("MR-Grid")[-1]
    dim = table.column("MR-Dim")[-1]
    if not (angle > grid > dim):
        return (
            f"top-dimension optimality ordering broken: "
            f"angle={angle:.3f} grid={grid:.3f} dim={dim:.3f}"
        )
    return ""


def _fig7_eq_width_magnitude(table: Table) -> str:
    eq = max(table.column("MR-Angle(eq-width)"))
    if not 0.45 <= eq <= 0.9:
        return f"equal-width optimality max {eq:.3f} outside the paper band"
    return ""


def _theory_bound_holds(table: Table) -> str:
    if not all(table.column("bound_holds")):
        return "Theorem 2 bound violated at some probe"
    for x, closed, mc in zip(
        table.column("x"), table.column("D_angle_eq3"), table.column("D_angle_mc")
    ):
        if abs(closed - mc) > 0.02:
            return f"Monte-Carlo diverges from Eq. 3 at x={x}: {closed} vs {mc}"
    return ""


def reproduction_checks(
    *,
    quick: bool = False,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    cache: DatasetCache | None = None,
) -> List[ShapeCheck]:
    """The gate's check suite.

    ``quick`` shrinks cardinalities ~10× (useful in CI); the claims are the
    same.
    """
    cache = cache or default_cache()
    small = 1_000
    large = 10_000 if quick else 100_000
    dims: Sequence[int] = (2, 6, 10)
    # The gate always measures on the serial executor, whatever
    # $REPRO_EXECUTOR says: its timing-shape claims feed on clean inline
    # per-task seconds, which pool executors pollute with pickle/IPC
    # overhead (noisy on loaded CI runners).
    executor = "serial"

    def fig5b() -> Table:
        return figure5(
            large, dims=dims, cluster=cluster, cache=cache, executor=executor
        )

    def fig6() -> Table:
        return figure6(
            n=large,
            d=dims[-1],
            node_counts=(4, 8, 16, 32),
            base_cluster=cluster,
            cache=cache,
            include_tree_merge=False,
            executor=executor,
        )

    def fig7a() -> Table:
        return figure7(
            small, dims=dims, cluster=cluster, cache=cache, executor=executor
        )

    def fig7b() -> Table:
        return figure7(
            large, dims=dims, cluster=cluster, cache=cache, executor=executor
        )

    def thy() -> Table:
        return theory(mc_samples=50_000 if quick else 200_000)

    return [
        ShapeCheck(
            name="fig5b-angle-fastest",
            claim="MR-Angle is the fastest method at every dimension (N large)",
            predicate=_angle_fastest,
            table_fn=fig5b,
        ),
        ShapeCheck(
            name="fig5b-gap-grows",
            claim="the MR-Angle advantage grows with dimension, >= 1.5x at the top",
            predicate=_angle_gap_grows,
            table_fn=fig5b,
        ),
        ShapeCheck(
            name="fig6-saturating-speedup",
            claim="total time declines with servers and saturates",
            predicate=_fig6_declines_and_saturates,
            table_fn=fig6,
        ),
        ShapeCheck(
            name="fig7b-ordering",
            claim="optimality ordering Angle > Grid > Dim at the top dimension",
            predicate=_fig7_ordering_at_top_dim,
            table_fn=fig7b,
        ),
        ShapeCheck(
            name="fig7a-eq-width-magnitude",
            claim="equal-width sectors reach the paper's ~0.6 optimality",
            predicate=_fig7_eq_width_magnitude,
            table_fn=fig7a,
        ),
        ShapeCheck(
            name="theory-eq3-eq4",
            claim="Eq. 3 matches Monte-Carlo and the Eq. 4 bound holds",
            predicate=_theory_bound_holds,
            table_fn=thy,
        ),
    ]


def verify_all(
    *,
    quick: bool = False,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    cache: DatasetCache | None = None,
) -> List[CheckResult]:
    """Run every shape check; returns results in declaration order."""
    return [
        check.run()
        for check in reproduction_checks(quick=quick, cluster=cluster, cache=cache)
    ]
