"""Tests for repro.observability.report (trace loading + rendering)."""

import io

import pytest

from repro.observability.report import (
    TraceError,
    load_trace,
    render_summary,
    render_tree,
    summarize_spans,
)
from repro.observability.tracing import JsonLinesExporter, Tracer


def _traced_job(exporter=None):
    """A small job/phase/task span tree; returns (tracer, finished spans)."""
    tracer = Tracer(exporter, keep_spans=True)
    with tracer.span("mr-angle-partition", kind="job"):
        with tracer.span("map", kind="phase", phase="map", tasks=2):
            with tracer.span("map-0", kind="task"):
                pass
            with tracer.span("map-1", kind="task"):
                pass
        with tracer.span("shuffle", kind="phase", phase="shuffle"):
            pass
        with tracer.span("reduce", kind="phase", phase="reduce", tasks=1):
            with tracer.span("reduce-0", kind="task"):
                pass
    return tracer, tracer.finished


class TestLoadTrace:
    def test_json_lines_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = JsonLinesExporter(str(path))
        _, original = _traced_job(exporter)
        exporter.write_metrics({"gauges": {"partition.max_min_ratio": 2.0}})
        exporter.close()

        spans, snapshot = load_trace(str(path))
        assert [s.name for s in spans] == [s.name for s in original]
        assert [s.span_id for s in spans] == [s.span_id for s in original]
        assert [s.duration_ns for s in spans] == [s.duration_ns for s in original]
        assert snapshot == {"gauges": {"partition.max_min_ratio": 2.0}}

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError, match="no span records"):
            load_trace(io.StringIO(""))

    def test_metrics_only_trace_rejected(self):
        with pytest.raises(TraceError, match="no span records"):
            load_trace(io.StringIO('{"type": "metrics", "snapshot": {}}\n'))

    def test_malformed_trace_rejected(self):
        with pytest.raises(TraceError):
            load_trace(io.StringIO("garbage\n"))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(str(tmp_path / "absent.jsonl"))


class TestSummarize:
    def test_counts_and_phases(self):
        _, spans = _traced_job()
        summary = summarize_spans(spans)
        assert summary["spans"] == 7
        assert summary["jobs"] == 1
        assert summary["tasks"] == 3
        assert summary["errors"] == 0
        assert summary["wall_s"] > 0
        # Phase shares form a distribution over map/shuffle/reduce.
        assert sum(summary["phase_share"].values()) == pytest.approx(1.0, abs=1e-3)
        assert summary["task_max_s"] >= summary["task_p50_s"] >= 0

    def test_phase_durations_bounded_by_wall(self):
        _, spans = _traced_job()
        summary = summarize_spans(spans)
        assert sum(summary["phase_s"].values()) <= summary["wall_s"]

    def test_error_span_counted(self):
        tracer = Tracer(keep_spans=True)
        with pytest.raises(RuntimeError):
            with tracer.span("job", kind="job"):
                raise RuntimeError("x")
        assert summarize_spans(tracer.finished)["errors"] == 1


class TestRenderTree:
    def test_hierarchy_and_durations(self):
        _, spans = _traced_job()
        text = render_tree(spans)
        lines = text.splitlines()
        assert lines[0].startswith("job:mr-angle-partition")
        assert any(line.startswith("  phase:map") for line in lines)
        assert any(line.startswith("    task:map-0") for line in lines)
        assert "(2 tasks)" in text
        assert "%" in lines[0]

    def test_elides_long_phases(self):
        tracer = Tracer(keep_spans=True)
        with tracer.span("job", kind="job"):
            with tracer.span("reduce", kind="phase", phase="reduce"):
                for i in range(6):
                    with tracer.span(f"reduce-{i}", kind="task"):
                        pass
        text = render_tree(tracer.finished, max_tasks_per_phase=2)
        assert "… 4 more tasks" in text
        assert text.count("task:") == 2

    def test_error_flag(self):
        tracer = Tracer(keep_spans=True)
        with pytest.raises(ValueError):
            with tracer.span("job", kind="job"):
                raise ValueError("x")
        assert "[ERROR]" in render_tree(tracer.finished)

    def test_orphan_spans_root_the_tree(self):
        # A truncated trace can reference a parent that was never written.
        _, spans = _traced_job()
        tail = spans[:2]  # two tasks whose parents are missing
        text = render_tree(tail)
        assert len(text.splitlines()) == 2


class TestRenderSummary:
    def test_includes_phases_and_skew(self):
        _, spans = _traced_job()
        snapshot = {
            "gauges": {
                "partition.max_min_ratio": 1.25,
                "partition.records_max": 500.0,
                "other.gauge": 9.0,
            }
        }
        text = render_summary(spans, snapshot)
        assert "per-phase breakdown" in text
        for phase in ("map", "shuffle", "reduce"):
            assert phase in text
        assert "partition.max_min_ratio" in text
        assert "1.250" in text
        assert "other.gauge" not in text  # only partition.* gauges shown

    def test_without_snapshot(self):
        _, spans = _traced_job()
        text = render_summary(spans, None)
        assert "partition skew" not in text
