"""Chaos suite: fault-injected runs must match fault-free answers exactly.

Three angles on the same invariant:

* ``test_differential`` — canned fault plans x all executors x all skyline
  methods: recovered runs reproduce the fault-free serial skyline bit for
  bit, and the framework counters account for every injected fault.
* ``test_property`` — hypothesis-generated fault plans (with shrinking)
  never change the answer; backoff arithmetic holds for arbitrary policies.
* ``test_determinism`` — one seed, one plan: two runs produce the same
  fault schedule, the same retry counters, and the same span tree.
"""
