"""repro — MapReduce skyline query processing with angular partitioning.

A from-scratch reproduction of

    Liang Chen, Kai Hwang, Jian Wu.
    "MapReduce Skyline Query Processing with A New Angular Partitioning
    Approach." IEEE IPDPS Workshops (IPDPSW), 2012.

Packages:

* :mod:`repro.core` — skyline algorithms (BNL/SFS/D&C), the hyperspherical
  transform, the three data-space partitioners, the MR-Dim / MR-Grid /
  MR-Angle pipelines, the optimality metric, and the §IV theory.
* :mod:`repro.mapreduce` — the Hadoop-like execution engine substrate plus
  the deterministic cluster timing simulator.
* :mod:`repro.services` — QoS schema, synthetic QWS workload, UDDI-like
  registry, service selection.
* :mod:`repro.data` — benchmark data generators and persistence.
* :mod:`repro.bench` — experiment drivers regenerating every figure.

Quick start::

    import numpy as np
    from repro import run_mr_skyline

    points = np.random.default_rng(0).random((10_000, 4))
    result = run_mr_skyline(points, method="angle", num_workers=4)
    print(result.global_indices)        # skyline row indices
    print(result.summary())
"""

from repro.core import (
    AngularPartitioner,
    DimensionalPartitioner,
    GridPartitioner,
    IncrementalSkyline,
    MRSkylineResult,
    RandomPartitioner,
    bnl_skyline,
    dnc_skyline,
    dominates,
    run_mr_skyline,
    sfs_skyline,
    skyline,
    skyline_points,
    to_hyperspherical,
    update_mr_skyline,
)
from repro.services import (
    QWS_SCHEMA,
    ServiceDataset,
    ServiceRegistry,
    extend_dataset,
    generate_qws,
    select_services,
)

__version__ = "1.0.0"

__all__ = [
    "AngularPartitioner",
    "DimensionalPartitioner",
    "GridPartitioner",
    "IncrementalSkyline",
    "MRSkylineResult",
    "QWS_SCHEMA",
    "RandomPartitioner",
    "ServiceDataset",
    "ServiceRegistry",
    "__version__",
    "bnl_skyline",
    "dnc_skyline",
    "dominates",
    "extend_dataset",
    "generate_qws",
    "run_mr_skyline",
    "select_services",
    "sfs_skyline",
    "skyline",
    "skyline_points",
    "to_hyperspherical",
    "update_mr_skyline",
]
