"""Built-in rule packs.

Importing this package registers every built-in rule with
:mod:`repro.analysis.base`; third-party rules can do the same with the
:func:`~repro.analysis.base.register` decorator (see
``docs/static_analysis.md`` for the recipe).
"""

from repro.analysis.rules.blocking_under_lock import BlockingUnderLockRule
from repro.analysis.rules.escape_analysis import EscapeAnalysisRule
from repro.analysis.rules.exception_hygiene import ExceptionHygieneRule
from repro.analysis.rules.kernel_seam import KernelSeamRule
from repro.analysis.rules.lock_discipline import (
    LockDisciplineRule,
    WalDisciplineRule,
)
from repro.analysis.rules.lock_order import LockOrderCycleRule
from repro.analysis.rules.no_sleep import UdfNoSleepRule
from repro.analysis.rules.pickle_safety import PickleSafetyRule
from repro.analysis.rules.udf_purity import UdfPurityRule

__all__ = [
    "BlockingUnderLockRule",
    "EscapeAnalysisRule",
    "ExceptionHygieneRule",
    "KernelSeamRule",
    "LockDisciplineRule",
    "LockOrderCycleRule",
    "PickleSafetyRule",
    "UdfNoSleepRule",
    "UdfPurityRule",
    "WalDisciplineRule",
]
