"""Serving front ends: JSON-lines over stdio or a threading TCP socket.

``repro serve`` (see :mod:`repro.cli`) builds a
:class:`~repro.serving.service.SkylineService` and hands it to one of the
two loops here:

* :func:`serve_stdio` — one session over stdin/stdout, the default.  A
  client drives it through a pipe (see
  :class:`repro.serving.client.ServingClient.spawn`); the CI smoke job and
  the tests use exactly this path.
* :func:`make_tcp_server` — a ``ThreadingTCPServer``; every connection is
  its own session thread, so concurrent clients exercise the service's
  admission control and coalescing for real.

Both loops speak the protocol of :mod:`repro.serving.protocol` and exit
cleanly on a successful ``shutdown`` op.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading
import time
from typing import IO, Any, Callable, Dict, Iterable

from repro.observability.events import get_events
from repro.serving.protocol import handle_request

__all__ = ["serve_lines", "serve_stdio", "make_tcp_server"]

#: Bound on waiting for live session threads at shutdown (seconds).  A
#: session stuck in a long compute past this is abandoned (it is a
#: daemon thread), but its count is reported in the ``server.stop``
#: event instead of silently relying on process exit to reap it.
DEFAULT_STOP_JOIN_S = 5.0

#: A request dispatcher: ``(service, decoded request) -> response object``.
#: :func:`repro.serving.protocol.handle_request` is the single-node one;
#: the cluster coordinator plugs in its own and reuses both loops.
RequestHandler = Callable[[Any, Dict[str, Any]], Dict[str, Any]]


def _respond(out: IO[str], response: Dict[str, Any]) -> None:
    out.write(json.dumps(response, default=str) + "\n")
    out.flush()


def serve_lines(
    service: Any,
    lines: Iterable[str],
    out: IO[str],
    *,
    handler: RequestHandler = handle_request,
) -> bool:
    """Run one request/response session; True if it ended via ``shutdown``."""
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            _respond(
                out,
                {"ok": False, "status": "error", "error": f"bad JSON: {exc}"},
            )
            continue
        response = handler(service, request)
        _respond(out, response)
        if (
            isinstance(request, dict)
            and request.get("op") == "shutdown"
            and response.get("ok")
        ):
            return True
    return False


def serve_stdio(
    service: Any,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
    *,
    handler: RequestHandler = handle_request,
) -> None:
    """Serve one session over stdin/stdout (the ``repro serve`` default)."""
    serve_lines(
        service,
        stdin if stdin is not None else sys.stdin,
        stdout if stdout is not None else sys.stdout,
        handler=handler,
    )


class _SessionHandler(socketserver.StreamRequestHandler):
    """One TCP connection = one JSON-lines session."""

    def handle(self) -> None:
        server: "ServingTCPServer" = self.server  # type: ignore[assignment]
        reader = (raw.decode("utf-8", "replace") for raw in self.rfile)
        out = _TextOut(self.wfile)
        if serve_lines(server.service, reader, out, handler=server.handler):
            # A successful shutdown op stops the whole server, not just
            # this session; shutdown() must come from another thread
            # (stop() joins the other sessions and skips this one).
            threading.Thread(target=server.stop, daemon=True).start()


class _TextOut:
    """Minimal text adapter over the handler's binary write file."""

    def __init__(self, wfile: Any) -> None:
        self._wfile = wfile

    def write(self, text: str) -> None:
        self._wfile.write(text.encode("utf-8"))

    def flush(self) -> None:
        self._wfile.flush()


class ServingTCPServer(socketserver.ThreadingTCPServer):
    """Threading TCP server bound to one service and one dispatcher.

    Session threads are tracked (not merely daemonised): a clean stop
    joins them with a bound, so in-flight responses get to finish and
    WAL appends are not cut off mid-frame by process teardown — the
    durable-serving requirement that plain ``daemon_threads`` alone
    cannot meet.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple,
        service: Any,
        handler: RequestHandler = handle_request,
    ):
        super().__init__(address, _SessionHandler)
        self.service = service
        self.handler = handler
        self._sessions_lock = threading.Lock()
        self._sessions: Dict[int, threading.Thread] = {}
        self._stopped = threading.Event()

    # ``ThreadingMixIn.process_request`` spawns the session thread; wrap
    # the handler bookkeeping instead so tracking needs no copy of the
    # stdlib's spawn logic.
    def process_request_thread(self, request: Any, client_address: Any) -> None:
        thread = threading.current_thread()
        with self._sessions_lock:
            self._sessions[thread.ident or id(thread)] = thread
        try:
            super().process_request_thread(request, client_address)
        finally:
            with self._sessions_lock:
                self._sessions.pop(thread.ident or id(thread), None)

    def live_sessions(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    def stop(self, *, join_timeout_s: float = DEFAULT_STOP_JOIN_S) -> int:
        """Stop accepting, join live sessions (bounded), emit ``server.stop``.

        Idempotent — the shutdown op's handler thread and a signal-driven
        ``finally`` may both call it.  Returns the number of sessions
        still alive after the bounded join (0 on a fully clean stop).
        """
        if self._stopped.is_set():
            return 0
        self._stopped.set()
        self.shutdown()
        deadline = time.monotonic() + max(join_timeout_s, 0.0)
        with self._sessions_lock:
            threads = [t for t in self._sessions.values() if t.is_alive()]
        me = threading.current_thread()
        for thread in threads:
            if thread is me:
                continue  # the shutdown op's own session cannot join itself
            remaining = deadline - time.monotonic()
            if remaining > 0:
                thread.join(remaining)
        abandoned = sum(
            1 for t in threads if t is not me and t.is_alive()
        )
        get_events().emit(
            "server.stop",
            address=f"{self.server_address[0]}:{self.server_address[1]}",
            joined=len(threads) - abandoned - (1 if me in threads else 0),
            abandoned=abandoned,
        )
        return abandoned


def make_tcp_server(
    service: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    handler: RequestHandler = handle_request,
) -> ServingTCPServer:
    """Bind a TCP server (``port=0`` picks a free port; see
    ``server.server_address``); the caller runs ``serve_forever()``."""
    return ServingTCPServer((host, port), service, handler)
