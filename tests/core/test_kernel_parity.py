"""Differential parity: every algorithm returns identical skyline ids under
the scalar and block kernels.

The skyline of a point set is unique, so any divergence between backends is
a kernel bug, never a legitimate tie-break difference.  The suite drives
every re-routed algorithm (BNL, SFS, skyband, incremental, the MapReduce
pipeline under all three paper partitioners, with and without filter
pruning) over adversarial inputs — duplicates, degenerate single-point
clouds, anti-correlated simplices, d ∈ {2, 4, 10} — and Hypothesis searches
for counterexamples the curated sets miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bnl import bnl_skyline
from repro.core.incremental import IncrementalSkyline
from repro.core.kernels import KERNEL_NAMES
from repro.core.mr_skyline import run_mr_skyline
from repro.core.partitioning import make_partitioner
from repro.core.sfs import sfs_skyline
from repro.core.skyband import k_skyband, top_k_dominating
from repro.core.skyline import skyline_numpy

DIMS = (2, 4, 10)
METHODS = ("dim", "grid", "angle")


def _datasets(d, seed=0):
    rng = np.random.default_rng(seed)
    yield "random", rng.random((240, d))
    yield "duplicates", rng.integers(0, 3, size=(180, d)).astype(float)
    yield "degenerate", np.tile(rng.random((1, d)), (25, 1))
    anti = rng.random((120, d))
    anti[:, -1] = d - anti[:, :-1].sum(axis=1)
    yield "anti-correlated", anti


def _ids(x):
    return np.sort(np.asarray(x, dtype=np.intp))


class TestSingleMachineParity:
    @pytest.mark.parametrize("d", DIMS)
    def test_bnl(self, d):
        for name, pts in _datasets(d):
            expected = skyline_numpy(pts)
            for kernel in KERNEL_NAMES:
                got = bnl_skyline(pts, kernel=kernel).indices
                assert np.array_equal(_ids(got), expected), (name, kernel)

    @pytest.mark.parametrize("d", DIMS)
    def test_bnl_windowed(self, d):
        for name, pts in _datasets(d):
            expected = skyline_numpy(pts)
            for kernel in KERNEL_NAMES:
                got = bnl_skyline(pts, window_size=16, kernel=kernel).indices
                assert np.array_equal(_ids(got), expected), (name, kernel)

    @pytest.mark.parametrize("d", DIMS)
    def test_sfs(self, d):
        for name, pts in _datasets(d):
            expected = skyline_numpy(pts)
            for kernel in KERNEL_NAMES:
                got = sfs_skyline(pts, kernel=kernel).indices
                assert np.array_equal(_ids(got), expected), (name, kernel)

    @pytest.mark.parametrize("d", DIMS)
    def test_skyband(self, d):
        for name, pts in _datasets(d):
            for k in (1, 3):
                bands = {
                    kernel: k_skyband(pts, k, kernel=kernel)
                    for kernel in KERNEL_NAMES
                }
                assert np.array_equal(bands["scalar"], bands["block"]), name
            tops = {
                kernel: top_k_dominating(pts, 5, kernel=kernel)
                for kernel in KERNEL_NAMES
            }
            assert np.array_equal(tops["scalar"], tops["block"]), name

    @pytest.mark.parametrize("scheme", ("dim", "grid", "angle", "random"))
    def test_incremental_inserts_and_removals(self, scheme):
        rng = np.random.default_rng(17)
        pts = rng.random((150, 4))
        extra = rng.random((20, 4))
        results = {}
        for kernel in KERNEL_NAMES:
            part = make_partitioner(scheme, 4)
            sky = IncrementalSkyline(part, pts, kernel=kernel)
            for row in extra:
                sky.insert(row)
            for victim in (3, 60, 149, 151):
                sky.remove(victim)
            results[kernel] = sorted(sky.global_skyline())
            assert sky.kernel_name == kernel
        assert results["scalar"] == results["block"]


class TestMapReduceParity:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("d", DIMS)
    def test_global_skyline_identical(self, method, d):
        pts = np.random.default_rng(d).random((600, d))
        expected = skyline_numpy(pts)
        for kernel in KERNEL_NAMES:
            for filter_k in (0, 8):
                result = run_mr_skyline(
                    pts, method=method, kernel=kernel, prune_filter_k=filter_k
                )
                assert np.array_equal(
                    _ids(result.global_indices), expected
                ), (method, kernel, filter_k)
                assert result.kernel == kernel
                if filter_k:
                    assert result.filter_points > 0
                else:
                    # points_pruned may still be non-zero: MR-Grid's cell
                    # pruning predates (and composes with) filter pruning.
                    assert result.filter_points == 0

    def test_duplicates_through_the_pipeline(self):
        pts = np.random.default_rng(5).integers(0, 3, size=(300, 4)).astype(float)
        expected = skyline_numpy(pts)
        for kernel in KERNEL_NAMES:
            result = run_mr_skyline(
                pts, method="angle", kernel=kernel, prune_filter_k=8
            )
            assert np.array_equal(_ids(result.global_indices), expected), kernel

    def test_block_defaults_enable_pruning_scalar_does_not(self):
        pts = np.random.default_rng(11).random((800, 4))
        scalar = run_mr_skyline(pts, method="angle", kernel="scalar")
        block = run_mr_skyline(pts, method="angle", kernel="block")
        assert scalar.points_pruned == 0 and scalar.filter_points == 0
        assert block.filter_points > 0 and block.points_pruned > 0
        assert np.array_equal(
            _ids(scalar.global_indices), _ids(block.global_indices)
        )


# -- Hypothesis: adversarial search beyond the curated sets -------------------

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def matrices(draw):
    n = draw(st.integers(min_value=1, max_value=48))
    d = draw(st.integers(min_value=2, max_value=5))
    base = draw(
        st.lists(
            st.lists(finite, min_size=d, max_size=d),
            min_size=n,
            max_size=n,
        )
    )
    pts = np.array(base, dtype=np.float64)
    if draw(st.booleans()) and n > 1:
        # Inject duplicate rows: copy a prefix over a suffix.
        k = draw(st.integers(min_value=1, max_value=n - 1))
        pts[-k:] = pts[:k]
    return pts


@given(matrices())
@settings(max_examples=80, deadline=None)
def test_hypothesis_backends_match_oracle(pts):
    expected = skyline_numpy(pts)
    for kernel in KERNEL_NAMES:
        assert np.array_equal(
            bnl_skyline(pts, kernel=kernel).indices, expected
        )
        assert np.array_equal(
            _ids(sfs_skyline(pts, kernel=kernel).indices), expected
        )


@given(matrices())
@settings(max_examples=40, deadline=None)
def test_hypothesis_mr_pipeline_matches_oracle(pts):
    expected = skyline_numpy(pts)
    for kernel in KERNEL_NAMES:
        result = run_mr_skyline(
            pts, method="grid", num_workers=2, kernel=kernel, prune_filter_k=4
        )
        assert np.array_equal(_ids(result.global_indices), expected)
