"""Figure 7(a): local skyline optimality vs dimension, N=1,000.

Shape assertions: MR-Dim is the weakest method at every dimension (the
paper: "the MR-Dim method is the lowest in reaching optimality") and the
paper-literal equal-width MR-Angle reaches the paper's ≈0.6 magnitude at
the top dimensions.
"""

from repro.bench.experiments import figure7


def test_fig7a(benchmark, scale, cache):
    table = benchmark.pedantic(
        lambda: figure7(
            scale.small_n, dims=scale.dims, cluster=scale.cluster, cache=cache
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    dim_col = table.column("MR-Dim")
    for col_name in ("MR-Grid", "MR-Angle"):
        for better, worse in zip(table.column(col_name), dim_col):
            assert better >= worse, f"{col_name} below MR-Dim"
    # Paper magnitude: max optimality ~= 0.61 (ours lands within [0.5, 0.85]).
    assert 0.5 <= max(table.column("MR-Angle(eq-width)")) <= 0.85
