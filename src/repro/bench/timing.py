"""Timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List


@dataclass(slots=True)
class Timer:
    """Accumulates named wall-clock measurements."""

    samples: dict = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.samples.setdefault(name, []).append(time.perf_counter() - start)

    def total(self, name: str) -> float:
        return sum(self.samples.get(name, []))

    def mean(self, name: str) -> float:
        values = self.samples.get(name, [])
        return sum(values) / len(values) if values else 0.0


def best_of(fn: Callable[[], object], repeats: int = 3) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best seconds, last result).

    Best-of-N is the standard noise-rejection strategy for wall-clock
    micro-measurements (the minimum is the least-contaminated sample).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def measurements_summary(values: List[float]) -> dict:
    """min/mean/max summary used in report footnotes."""
    if not values:
        return {"min": 0.0, "mean": 0.0, "max": 0.0, "n": 0}
    return {
        "min": min(values),
        "mean": sum(values) / len(values),
        "max": max(values),
        "n": len(values),
    }
