"""lock-discipline: state guarded by ``self._lock`` stays guarded.

The streaming shuffle, the thread executor's lazy pool, and the metrics
registry share mutable state with the thread backend.  The convention the
engine relies on: a class that owns a lock (``self._lock = Lock()``)
mutates its shared attributes **only** inside ``with self._lock:`` blocks.
An attribute written under the lock in one method and bare in another is a
latent race — exactly the class of bug the differential test suite cannot
reliably catch, because thread interleavings are not replayable.

Mechanics (a lightweight race detector, not an alias analysis):

* lock attributes = ``self.X`` assigned from a ``*Lock()`` call, plus the
  conventional name ``_lock``;
* for every other attribute, collect writes — plain/augmented/subscript
  assignment to ``self.A...`` and in-place container mutators
  (``self.A.append(...)``, ...) — and whether each sits inside a
  ``with self.<lock>:`` block;
* an attribute with at least one locked write makes every *unlocked* write
  to it (outside ``__init__`` / ``__new__``) a finding.

``__init__`` is exempt: construction happens before the object is shared.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Set

from repro.analysis.base import Rule, register
from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project, dotted_name

_MUTATORS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "remove",
    "discard",
    "clear",
    "pop",
    "popitem",
    "setdefault",
}

_CONSTRUCTORS = {"__init__", "__new__", "__post_init__"}


@dataclass(slots=True)
class _Write:
    attr: str
    node: ast.AST
    method: str
    locked: bool


@register
class LockDisciplineRule(Rule):
    """Attributes written under ``self._lock`` must never be written bare."""

    id = "lock-discipline"

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: Module, classdef: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_attrs = _lock_attributes(classdef)
        if not lock_attrs:
            return
        writes: List[_Write] = []
        for method in classdef.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            _collect_writes(method, lock_attrs, writes)
        guarded: Set[str] = {
            w.attr
            for w in writes
            if w.locked and w.method not in _CONSTRUCTORS
        }
        for write in writes:
            if (
                write.attr in guarded
                and not write.locked
                and write.method not in _CONSTRUCTORS
            ):
                yield self.finding(
                    module,
                    write.node,
                    f"{classdef.name}.{write.attr} is written under "
                    f"self.{sorted(lock_attrs)[0]} elsewhere but mutated "
                    f"without the lock in {write.method}(): a thread-backend "
                    "race",
                )


#: DatasetLog methods whose call sites the wal-discipline rule audits —
#: each appends to or truncates the write-ahead log, whose sequence
#: numbers must advance in lock-step with the store's generation counter.
_WAL_METHODS = {
    "append_record",
    "log_register",
    "log_insert",
    "log_remove",
    "log_bulk",
    "checkpoint",
    "maybe_checkpoint",
    "truncate",
}

#: Attribute names that identify a durability sink on ``self``.
_WAL_ATTR_MARKERS = ("wal", "durability", "dataset_log", "dlog")


@register
class WalDisciplineRule(Rule):
    """WAL appends/truncates must run under the owning store's lock.

    The write-ahead log's sequence numbers and the store's generation
    counter are one logical clock: recovery replays "snapshot generation
    + one bump per tail record" and expects to land exactly on the
    pre-crash generation.  A WAL append outside the store lock can
    interleave with a racing mutation — record order no longer matches
    generation order — and a truncate outside the lock can drop a record
    a concurrent mutation just acknowledged.

    Mechanics: in any class that owns a lock
    (:func:`_lock_attributes`), every call
    ``self.<durability-ish attr>.<wal method>(...)`` — attr containing
    ``wal``/``durability``/``dlog``, method in :data:`_WAL_METHODS` —
    must sit inside ``with self.<lock>:``.  Constructors are exempt for
    the same publication reason as lock-discipline.
    """

    id = "wal-discipline"

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: Module, classdef: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_attrs = _lock_attributes(classdef)
        if not lock_attrs:
            return
        calls: List[_Write] = []
        for method in classdef.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            _collect_wal_calls(method, lock_attrs, calls)
        for call in calls:
            if call.locked or call.method in _CONSTRUCTORS:
                continue
            yield self.finding(
                module,
                call.node,
                f"{classdef.name}.{call.method}() calls "
                f"self.{call.attr} WAL I/O outside "
                f"self.{sorted(lock_attrs)[0]}: log order can race the "
                "generation counter and break recovery replay",
            )


def _collect_wal_calls(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
    lock_attrs: Set[str],
    out: List[_Write],
) -> None:
    """Like :func:`_collect_writes`, but for durability-sink calls."""

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            holds = locked or _acquires_lock(node, lock_attrs)
            for item in node.items:
                visit(item.context_expr, locked)
            for stmt in node.body:
                visit(stmt, holds)
            return
        if isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in _WAL_METHODS
            ):
                attr = _self_attr_root(callee.value)
                if attr is not None and _is_wal_attr(attr):
                    out.append(_Write(attr, node, method.name, locked))
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for stmt in method.body:
        visit(stmt, False)


def _is_wal_attr(attr: str) -> bool:
    name = attr.lower()
    return any(marker in name for marker in _WAL_ATTR_MARKERS)


def _lock_attributes(classdef: ast.ClassDef) -> Set[str]:
    """Names of ``self.X`` attributes holding a lock."""
    locks: Set[str] = set()
    for node in ast.walk(classdef):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if target.attr == "_lock":
                    locks.add(target.attr)
                elif isinstance(node.value, ast.Call):
                    callee = dotted_name(node.value.func)
                    if callee.rsplit(".", 1)[-1] in ("Lock", "RLock"):
                        locks.add(target.attr)
    return locks


def _collect_writes(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
    lock_attrs: Set[str],
    out: List[_Write],
) -> None:
    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            holds = locked or _acquires_lock(node, lock_attrs)
            for item in node.items:
                visit(item.context_expr, locked)
            for stmt in node.body:
                visit(stmt, holds)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in _flatten_targets(targets):
                attr = _self_attr_root(target)
                if attr is not None and attr not in lock_attrs:
                    out.append(_Write(attr, node, method.name, locked))
            if node.value is not None:
                visit(node.value, locked)
            return
        if isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in _MUTATORS
            ):
                attr = _self_attr_root(callee.value)
                if attr is not None and attr not in lock_attrs:
                    out.append(_Write(attr, node, method.name, locked))
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for stmt in method.body:
        visit(stmt, False)


def _flatten_targets(targets: List[ast.AST]) -> Iterator[ast.AST]:
    """Unpack tuple/list/starred assignment targets to their leaves."""
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flatten_targets(list(target.elts))
        elif isinstance(target, ast.Starred):
            yield from _flatten_targets([target.value])
        else:
            yield target


def _acquires_lock(node: ast.With, lock_attrs: Set[str]) -> bool:
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in lock_attrs
        ):
            return True
    return False


def _self_attr_root(target: ast.AST) -> str | None:
    """First-level attribute of a ``self.A...`` store target, else None."""
    chain: List[ast.AST] = []
    node: ast.AST = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        chain.append(node)
        node = node.value
    if not isinstance(node, ast.Name) or node.id != "self" or not chain:
        return None
    last = chain[-1]
    if isinstance(last, ast.Attribute):
        return last.attr
    return None
