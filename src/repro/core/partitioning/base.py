"""Data-space partitioner interface.

A :class:`SpacePartitioner` carves the QoS data space into ``num_partitions``
regions; the Map stage of every MR skyline algorithm calls
:meth:`~SpacePartitioner.assign` to route each point to its region.  The
partitioner is *fitted* on the driver (it may need data extents) and then
shipped to map tasks through the job parameters — the analogue of putting
partition metadata in Hadoop's distributed cache, so it must stay picklable.

Subclasses implement :meth:`_fit` and :meth:`_assign`; the base class
handles validation and the fitted-state protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.blocks import PointBlock
from repro.core.dominance import validate_points
from repro.observability.tracing import get_tracer

__all__ = ["NotFittedError", "SpacePartitioner", "partition_sizes", "load_imbalance"]


class NotFittedError(RuntimeError):
    """assign() was called before fit()."""


@dataclass(frozen=True, slots=True)
class PartitionSummary:
    """Human-readable description of a fitted partitioner."""

    scheme: str
    num_partitions: int
    detail: Mapping[str, object]


class SpacePartitioner:
    """Base class for dimensional / grid / angular / random partitioning."""

    #: short scheme name used in reports ("dim", "grid", "angle", ...)
    scheme: str = "abstract"

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = num_partitions
        self._fitted = False

    # -- public protocol ---------------------------------------------------------

    def fit(self, points: np.ndarray) -> "SpacePartitioner":
        """Learn data extents (or whatever the scheme needs) from ``points``."""
        pts = validate_points(points)
        with get_tracer().span(
            f"partition-fit:{self.scheme}",
            kind="partition",
            scheme=self.scheme,
            points=int(pts.shape[0]),
            dims=int(pts.shape[1]),
        ) as span:
            self._fit(pts)
            self._fitted = True
            span.set_attrs(partitions=self.num_partitions, **self._trace_attrs())
        return self

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Partition id in ``[0, num_partitions)`` for each point."""
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__}.assign() called before fit()"
            )
        pts = validate_points(points)
        ids = np.asarray(self._assign(pts))
        if ids.shape != (pts.shape[0],):
            raise AssertionError(
                f"{type(self).__name__}._assign returned shape {ids.shape}"
            )
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_partitions):
            raise AssertionError(
                f"{type(self).__name__} produced ids outside "
                f"[0, {self.num_partitions}): [{ids.min()}, {ids.max()}]"
            )
        return ids.astype(np.int64)

    def assign_block(self, block: PointBlock) -> np.ndarray:
        """Partition id per :class:`~repro.core.blocks.PointBlock` row.

        The columnar entry point: a block's row matrix is already a
        contiguous float64 ``(n, d)`` array, so assignment is one
        vectorised pass with no copy or re-validation of the rows.
        """
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__}.assign_block() called before fit()"
            )
        ids = np.asarray(self._assign(block.rows))
        if ids.shape != (len(block),):
            raise AssertionError(
                f"{type(self).__name__}._assign returned shape {ids.shape}"
            )
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_partitions):
            raise AssertionError(
                f"{type(self).__name__} produced ids outside "
                f"[0, {self.num_partitions}): [{ids.min()}, {ids.max()}]"
            )
        return ids.astype(np.int64)

    def fit_assign(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).assign(points)

    def summary(self) -> PartitionSummary:
        return PartitionSummary(
            scheme=self.scheme,
            num_partitions=self.num_partitions,
            detail=self._detail(),
        )

    # -- subclass hooks -----------------------------------------------------------

    def _fit(self, points: np.ndarray) -> None:
        raise NotImplementedError

    def _assign(self, points: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _detail(self) -> Mapping[str, object]:
        return {}

    def _trace_attrs(self) -> Mapping[str, object]:
        """Compact scheme-specific annotations for the fit-time trace span.

        Unlike :meth:`_detail` this must stay small (no boundary arrays) —
        it is serialized into every trace file.
        """
        return {}


def partition_sizes(ids: np.ndarray, num_partitions: int) -> np.ndarray:
    """Point count per partition (length ``num_partitions``)."""
    return np.bincount(np.asarray(ids, dtype=np.int64), minlength=num_partitions)


def load_imbalance(ids: np.ndarray, num_partitions: int) -> float:
    """max/mean partition size over *non-degenerate* runs; 0 for empty input.

    1.0 is a perfectly balanced partitioning; the paper argues angular
    partitioning balances load better than dimensional slabs.
    """
    sizes = partition_sizes(ids, num_partitions)
    total = sizes.sum()
    if total == 0:
        return 0.0
    mean = total / num_partitions
    return float(sizes.max() / mean)
