"""Legacy setuptools shim.

The offline environment has no `wheel` package, so PEP 660 editable installs
(`pip install -e .` with a [build-system] table) cannot build the required
wheel.  Shipping a setup.py and omitting [build-system] makes pip fall back
to the legacy `setup.py develop` editable path, which works offline.
"""
from setuptools import setup

setup()
