"""Stateful property testing of IncrementalSkyline against a brute-force model.

Hypothesis drives random insert/remove sequences; after every step the
incremental structure's global skyline must equal a from-scratch skyline of
the surviving points.  This is the strongest guard we have on the §II
dynamic-maintenance logic (eviction lists, member bookkeeping, partition
recomputation, cache invalidation).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.incremental import IncrementalSkyline
from repro.core.partitioning import AngularPartitioner
from repro.core.skyline import skyline_numpy

coords = st.tuples(
    st.floats(0.01, 10.0, allow_nan=False),
    st.floats(0.01, 10.0, allow_nan=False),
    st.floats(0.01, 10.0, allow_nan=False),
)


class IncrementalSkylineMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        seed = np.array([[0.01, 0.01, 0.01], [10.0, 10.0, 10.0]])
        partitioner = AngularPartitioner(4).fit(seed)
        self.sky = IncrementalSkyline(partitioner)
        self.model: dict[int, np.ndarray] = {}  # id -> row

    @rule(point=coords)
    def insert(self, point) -> None:
        row = np.array(point)
        pid = self.sky.insert(row)
        assert pid not in self.model
        self.model[pid] = row

    @precondition(lambda self: bool(self.model))
    @rule(data=st.data())
    def remove(self, data) -> None:
        victim = data.draw(st.sampled_from(sorted(self.model)))
        self.sky.remove(victim)
        del self.model[victim]

    @precondition(lambda self: bool(self.model))
    @rule(data=st.data())
    def remove_skyline_member(self, data) -> None:
        current = self.sky.global_skyline()
        if not current:
            return
        victim = data.draw(st.sampled_from(current))
        self.sky.remove(victim)
        del self.model[victim]

    @rule()
    def remove_unknown_rejected(self) -> None:
        missing = (max(self.model) + 1000) if self.model else 999
        try:
            self.sky.remove(missing)
        except KeyError:
            return
        raise AssertionError("removing an unknown id must raise KeyError")

    @invariant()
    def matches_bruteforce(self) -> None:
        if not self.model:
            assert self.sky.global_skyline() == []
            return
        ids = sorted(self.model)
        rows = np.vstack([self.model[i] for i in ids])
        expected = sorted(ids[j] for j in skyline_numpy(rows))
        assert self.sky.global_skyline() == expected

    @invariant()
    def size_consistent(self) -> None:
        assert len(self.sky) == len(self.model)


IncrementalSkylineMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestIncrementalSkylineStateful = IncrementalSkylineMachine.TestCase
