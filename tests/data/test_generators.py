"""Tests for the Börzsönyi benchmark workload generators."""

import numpy as np
import pytest

from repro.core.skyline import skyline_numpy
from repro.data.generators import (
    anticorrelated,
    clustered,
    correlated,
    generate,
    independent,
)


class TestShapesAndRanges:
    @pytest.mark.parametrize(
        "fn", [independent, correlated, anticorrelated, clustered]
    )
    def test_shape(self, fn):
        pts = fn(100, 4, seed=0)
        assert pts.shape == (100, 4)

    @pytest.mark.parametrize(
        "fn", [independent, correlated, anticorrelated, clustered]
    )
    def test_unit_cube(self, fn):
        pts = fn(500, 3, seed=1)
        assert pts.min() >= 0.0
        assert pts.max() <= 1.0

    @pytest.mark.parametrize("fn", [independent, correlated, anticorrelated])
    def test_deterministic(self, fn):
        assert np.array_equal(fn(50, 3, seed=5), fn(50, 3, seed=5))
        assert not np.array_equal(fn(50, 3, seed=5), fn(50, 3, seed=6))

    @pytest.mark.parametrize("fn", [independent, correlated, anticorrelated])
    def test_invalid_args(self, fn):
        with pytest.raises(ValueError):
            fn(0, 3)
        with pytest.raises(ValueError):
            fn(10, 0)

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            correlated(10, 2, spread=-1)
        with pytest.raises(ValueError):
            anticorrelated(10, 2, spread=-1)


class TestDistributionCharacter:
    def test_correlated_attributes_positively_correlated(self):
        pts = correlated(3000, 3, seed=2)
        c = np.corrcoef(pts, rowvar=False)
        assert c[0, 1] > 0.5 and c[0, 2] > 0.5

    def test_anticorrelated_attributes_negatively_correlated(self):
        pts = anticorrelated(3000, 2, seed=3)
        assert np.corrcoef(pts, rowvar=False)[0, 1] < -0.3

    def test_skyline_ordering_across_workloads(self):
        """The canonical skyline-size ordering: correlated << independent
        << anti-correlated, at matched n and d."""
        n, d = 2000, 4
        sizes = {
            name: skyline_numpy(generate(name, n, d, seed=4)).size
            for name in ("correlated", "independent", "anticorrelated")
        }
        assert sizes["correlated"] < sizes["independent"] < sizes["anticorrelated"]

    def test_anticorrelated_sums_concentrated(self):
        d = 4
        pts = anticorrelated(2000, d, seed=5)
        sums = pts.sum(axis=1)
        assert abs(sums.mean() - d / 2) < 0.25 * d


class TestClustered:
    def test_points_near_centres(self):
        pts = clustered(2000, 3, seed=7, num_clusters=3, spread=0.01)
        # With tiny spread, points collapse into at most 3 tight groups.
        rounded = {tuple(r) for r in np.round(pts, 1)}
        assert len(rounded) <= 15

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered(10, 2, num_clusters=0)
        with pytest.raises(ValueError):
            clustered(10, 2, spread=-1)

    def test_more_clusters_more_spread(self):
        few = clustered(3000, 2, seed=8, num_clusters=2, spread=0.01)
        many = clustered(3000, 2, seed=8, num_clusters=20, spread=0.01)
        assert many.std() >= few.std() * 0.5  # sanity, not strict


class TestDispatch:
    @pytest.mark.parametrize(
        "name", ["independent", "correlated", "anticorrelated", "clustered"]
    )
    def test_generate(self, name):
        assert generate(name, 20, 2, seed=0).shape == (20, 2)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown workload"):
            generate("zipfian", 10, 2)
